//! The virtual GPU executing GEM bitstreams.
//!
//! [`GemGpu`] is the reproduction's stand-in for the paper's CUDA
//! interpreter kernel. It executes each core's decoded VLIW program with
//! the exact shared-memory fold semantics of
//! [`gem_place::BoomerangLayer::execute`], maintains the device-global
//! signal array, performs RAM block operations, and accumulates
//! [`KernelCounters`] whose per-cycle values drive the timing model.
//!
//! Intra-cycle memory discipline mirrors the real kernel: cores read
//! global signals once at cycle start; *immediate* writes (stage-boundary
//! cut signals, RAM port operands) become visible to later stages after a
//! device-wide synchronization; *deferred* writes (flip-flop next-states,
//! registered RAM read data, primary outputs) commit at the cycle
//! boundary, which is what makes full-cycle semantics race-free.

use crate::counters::{CounterBreakdown, KernelCounters, LayerCounters, PartitionCounters};
use gem_isa::{disassemble_core, Bitstream, DecodeError, DecodedCore, WriteSrc};
use gem_telemetry::MetricsSnapshot;
use std::fmt;

/// Global-memory binding of one RAM block (all indices are bit positions
/// in the device-global signal array).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RamBinding {
    /// Read-address bits, LSB first (immediate region).
    pub raddr: [u32; 13],
    /// Write-address bits.
    pub waddr: [u32; 13],
    /// Write-data bits.
    pub wdata: [u32; 32],
    /// Write enable.
    pub we: u32,
    /// Registered read-data bits (deferred region).
    pub rdata: [u32; 32],
}

/// Device-level configuration produced by the compiler.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeviceConfig {
    /// Size of the global signal array in bits.
    pub global_bits: u32,
    /// RAM blocks and their port bindings.
    pub rams: Vec<RamBinding>,
    /// Global bits whose power-on value is 1 (flip-flop init values).
    pub initial_ones: Vec<u32>,
}

/// Errors from [`GemGpu::load`] and [`GemGpu::restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A core program failed to decode.
    Decode(DecodeError),
    /// A global index or state address is out of range; the string names
    /// the offender.
    BadBinding(String),
    /// A snapshot's shape does not match the loaded design; the string
    /// names the mismatch.
    SnapshotMismatch(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Decode(e) => write!(f, "core program decode failed: {e}"),
            MachineError::BadBinding(s) => write!(f, "bad binding: {s}"),
            MachineError::SnapshotMismatch(s) => write!(f, "snapshot mismatch: {s}"),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<DecodeError> for MachineError {
    fn from(e: DecodeError) -> Self {
        MachineError::Decode(e)
    }
}

/// One loaded core: decoded program plus its precomputed per-cycle
/// counter contribution.
#[derive(Debug, Clone)]
struct LoadedCore {
    dec: DecodedCore,
    delta: KernelCounters,
    /// Static cost of one boomerang layer of this core (all layers of a
    /// core are structurally identical in cost): shared accesses, fold
    /// ALU ops, block barriers.
    layer_cost: (u64, u64, u64),
}

/// The virtual GPU; see the module docs.
#[derive(Debug, Clone)]
pub struct GemGpu {
    cfg: DeviceConfig,
    stages: Vec<Vec<LoadedCore>>,
    global: Vec<bool>,
    deferred: Vec<(u32, bool)>,
    ram_mem: Vec<Box<[u32]>>,
    counters: KernelCounters,
    /// Per-partition attribution of `counters` (same [stage][core] shape
    /// as `stages`); device-level events (RAM phase, device barriers,
    /// cycles) are not attributed.
    part_counters: Vec<Vec<KernelCounters>>,
    /// Per-boomerang-layer aggregation across all cores, indexed by layer.
    layer_counters: Vec<LayerCounters>,
    /// Event-based pruning (the paper's proposed extension): skip a core
    /// whose read set is bit-identical to its previous execution. Sound
    /// because a core's cycle function is pure — all state lives in the
    /// global array, so unchanged inputs imply unchanged writes.
    pruning: bool,
    /// Cached read values per (stage, core) for pruning.
    input_cache: Vec<Vec<Option<Vec<bool>>>>,
}

/// A saved point-in-time copy of everything mutable in a [`GemGpu`]:
/// the global signal array, RAM contents, deferred-write queue, all
/// counters, and the pruning input caches. Restoring a snapshot onto a
/// machine loaded with the *same* bitstream resumes execution
/// bit-exactly — the substrate for session suspend/resume in
/// `gem-server` and for checkpointed long simulations.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSnapshot {
    global: Vec<bool>,
    deferred: Vec<(u32, bool)>,
    ram_mem: Vec<Box<[u32]>>,
    counters: KernelCounters,
    part_counters: Vec<Vec<KernelCounters>>,
    layer_counters: Vec<LayerCounters>,
    input_cache: Vec<Vec<Option<Vec<bool>>>>,
}

impl GpuSnapshot {
    /// Approximate heap footprint in bytes (capacity accounting for
    /// server-side snapshot budgets).
    pub fn approx_bytes(&self) -> usize {
        self.global.len()
            + self.ram_mem.iter().map(|r| r.len() * 4).sum::<usize>()
            + self
                .input_cache
                .iter()
                .flatten()
                .flatten()
                .map(Vec::len)
                .sum::<usize>()
    }
}

/// Bits per 128-byte global-memory transaction.
const LINE_BITS: u64 = 128 * 8;

fn line_transactions(mut indices: Vec<u64>) -> u64 {
    indices.sort_unstable();
    indices.dedup();
    indices.len() as u64
}

impl GemGpu {
    /// Decodes and validates a bitstream against a device configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] on undecodable programs or out-of-range
    /// global indices / state addresses.
    pub fn load(bitstream: &Bitstream, cfg: DeviceConfig) -> Result<Self, MachineError> {
        let gb = cfg.global_bits;
        let mut stages = Vec::with_capacity(bitstream.stages.len());
        for (si, stage) in bitstream.stages.iter().enumerate() {
            let mut cores = Vec::with_capacity(stage.len());
            for (ci, bytes) in stage.iter().enumerate() {
                let dec = disassemble_core(bytes)?;
                let width = dec.width;
                for r in &dec.reads {
                    if r.global >= gb || u32::from(r.state) >= width {
                        return Err(MachineError::BadBinding(format!(
                            "stage {si} core {ci} read {} -> {}",
                            r.global, r.state
                        )));
                    }
                }
                for w in &dec.writes {
                    if w.global >= gb {
                        return Err(MachineError::BadBinding(format!(
                            "stage {si} core {ci} write to {}",
                            w.global
                        )));
                    }
                    if let WriteSrc::State { addr, .. } = w.src {
                        if u32::from(addr) >= width {
                            return Err(MachineError::BadBinding(format!(
                                "stage {si} core {ci} write from state {addr}"
                            )));
                        }
                    }
                }
                // Static per-cycle cost of this core.
                let folds = width.trailing_zeros() as u64;
                let mut delta = KernelCounters {
                    // The bitstream is streamed from global memory every
                    // cycle (it does not fit in shared memory).
                    global_bytes: bytes.len() as u64,
                    global_transactions: (bytes.len() as u64 * 8).div_ceil(LINE_BITS),
                    blocks_run: 1,
                    ..Default::default()
                };
                // Signal gathers/publishes: 32-bit accesses, coalescing
                // determined by how many 128-byte lines they touch.
                delta.global_bytes += 4 * (dec.reads.len() + dec.writes.len()) as u64;
                delta.global_transactions += line_transactions(
                    dec.reads
                        .iter()
                        .map(|r| u64::from(r.global) / LINE_BITS)
                        .collect(),
                );
                delta.global_transactions += line_transactions(
                    dec.writes
                        .iter()
                        .map(|w| u64::from(w.global) / LINE_BITS)
                        .collect(),
                );
                let layer_cost = (
                    u64::from(width) * 2, // gather + fold reads
                    u64::from(width) - 1,
                    1 + folds,
                );
                for _layer in &dec.layers {
                    delta.shared_accesses += layer_cost.0;
                    delta.alu_ops += layer_cost.1;
                    delta.block_syncs += layer_cost.2;
                }
                cores.push(LoadedCore {
                    dec,
                    delta,
                    layer_cost,
                });
            }
            stages.push(cores);
        }
        // Validate RAM bindings.
        for (ri, r) in cfg.rams.iter().enumerate() {
            let all = r
                .raddr
                .iter()
                .chain(&r.waddr)
                .chain(&r.wdata)
                .chain(&r.rdata)
                .chain(std::iter::once(&r.we));
            for &idx in all {
                if idx >= gb {
                    return Err(MachineError::BadBinding(format!(
                        "ram {ri} binds global {idx}"
                    )));
                }
            }
        }
        for &idx in &cfg.initial_ones {
            if idx >= gb {
                return Err(MachineError::BadBinding(format!(
                    "initial value binds global {idx}"
                )));
            }
        }
        let ram_mem = cfg
            .rams
            .iter()
            .map(|_| vec![0u32; 8192].into_boxed_slice())
            .collect();
        let mut global = vec![false; gb as usize];
        for &idx in &cfg.initial_ones {
            global[idx as usize] = true;
        }
        let input_cache = stages
            .iter()
            .map(|st| st.iter().map(|_| None).collect())
            .collect();
        let part_counters = stages
            .iter()
            .map(|st| vec![KernelCounters::default(); st.len()])
            .collect();
        let max_layers = stages
            .iter()
            .flatten()
            .map(|c| c.dec.layers.len())
            .max()
            .unwrap_or(0);
        let layer_counters = (0..max_layers)
            .map(|li| LayerCounters {
                layer: li as u32,
                ..Default::default()
            })
            .collect();
        Ok(GemGpu {
            global,
            deferred: Vec::new(),
            ram_mem,
            counters: KernelCounters::default(),
            part_counters,
            layer_counters,
            input_cache,
            pruning: false,
            stages,
            cfg,
        })
    }

    /// Enables or disables event-based pruning (off by default; the
    /// baseline GEM of the paper is an oblivious full-cycle simulator).
    pub fn set_pruning(&mut self, on: bool) {
        self.pruning = on;
        if !on {
            for st in &mut self.input_cache {
                for c in st.iter_mut() {
                    *c = None;
                }
            }
        }
    }

    /// Writes a bit of the global signal array (testbench input side).
    pub fn poke(&mut self, index: u32, v: bool) {
        self.global[index as usize] = v;
    }

    /// Reads a bit of the global signal array (testbench output side).
    pub fn peek(&self, index: u32) -> bool {
        self.global[index as usize]
    }

    /// Directly reads a word of RAM block `ram` (test setup/inspection).
    pub fn ram_word(&self, ram: usize, addr: usize) -> u32 {
        self.ram_mem[ram][addr]
    }

    /// Directly writes a word of RAM block `ram` (e.g. program loading).
    pub fn set_ram_word(&mut self, ram: usize, addr: usize, value: u32) {
        self.ram_mem[ram][addr] = value;
    }

    /// Executes one simulated design cycle: all stages, the RAM phase,
    /// then the deferred commit.
    pub fn step_cycle(&mut self) {
        // Take the program tables out of `self` so cores can mutate the
        // global array without aliasing (and without cloning programs).
        let stages = std::mem::take(&mut self.stages);
        for (si, stage) in stages.iter().enumerate() {
            for (ci, core) in stage.iter().enumerate() {
                self.run_core(core, si, ci);
            }
            // Stage boundary: device-wide synchronization makes immediate
            // writes visible.
            self.counters.device_syncs += 1;
        }
        self.stages = stages;
        // RAM phase (read-first): capture read data, then apply writes.
        for ri in 0..self.cfg.rams.len() {
            let b = self.cfg.rams[ri].clone();
            let addr_of = |g: &Vec<bool>, bits: &[u32; 13]| -> usize {
                bits.iter()
                    .enumerate()
                    .filter(|(_, &i)| g[i as usize])
                    .map(|(k, _)| 1usize << k)
                    .sum()
            };
            let raddr = addr_of(&self.global, &b.raddr);
            let word = self.ram_mem[ri][raddr];
            for (k, &g) in b.rdata.iter().enumerate() {
                self.deferred.push((g, (word >> k) & 1 == 1));
            }
            if self.global[b.we as usize] {
                let waddr = addr_of(&self.global, &b.waddr);
                let mut w = 0u32;
                for (k, &g) in b.wdata.iter().enumerate() {
                    if self.global[g as usize] {
                        w |= 1 << k;
                    }
                }
                self.ram_mem[ri][waddr] = w;
            }
            // One word read + potential write, plus the port-bit gathers.
            self.counters.global_bytes += 8 + 59 / 8;
            self.counters.global_transactions += 2;
        }
        if !self.cfg.rams.is_empty() {
            self.counters.device_syncs += 1;
        }
        // Cycle boundary: commit deferred writes (flip-flops update, read
        // data registers latch, outputs publish).
        for (g, v) in self.deferred.drain(..) {
            self.global[g as usize] = v;
        }
        self.counters.device_syncs += 1;
        self.counters.cycles += 1;
    }

    fn run_core(&mut self, core: &LoadedCore, si: usize, ci: usize) {
        let width = core.dec.width as usize;
        if self.pruning {
            let inputs: Vec<bool> = core
                .dec
                .reads
                .iter()
                .map(|r| self.global[r.global as usize])
                .collect();
            if self.input_cache[si][ci].as_ref() == Some(&inputs) {
                // Unchanged read set: outputs are guaranteed identical and
                // already present in the global array (immediate writes) or
                // re-commit the same values (deferred). Charge only the
                // input gather, not the bitstream stream or the folds.
                let skip_delta = KernelCounters {
                    blocks_skipped: 1,
                    global_bytes: 4 * core.dec.reads.len() as u64,
                    global_transactions: 1 + core.dec.reads.len() as u64 / 32,
                    ..Default::default()
                };
                self.counters += skip_delta;
                self.part_counters[si][ci] += skip_delta;
                // Deferred writes must still commit (FF next-states equal
                // their current values, but outputs may feed the testbench).
                for w in &core.dec.writes {
                    if w.deferred {
                        let v = match w.src {
                            WriteSrc::State { .. } => {
                                // Value unchanged ⇒ current global content
                                // is already correct; re-commit it.
                                self.global[w.global as usize]
                            }
                            WriteSrc::Const(c) => c,
                        };
                        self.deferred.push((w.global, v));
                    }
                }
                return;
            }
            self.input_cache[si][ci] = Some(inputs);
        }
        let mut state = vec![false; width];
        for r in &core.dec.reads {
            state[r.state as usize] = self.global[r.global as usize];
        }
        for layer in &core.dec.layers {
            layer.execute(&mut state);
        }
        for w in &core.dec.writes {
            let v = match w.src {
                WriteSrc::State { addr, invert } => state[addr as usize] ^ invert,
                WriteSrc::Const(c) => c,
            };
            if w.deferred {
                self.deferred.push((w.global, v));
            } else {
                self.global[w.global as usize] = v;
            }
        }
        self.counters += core.delta;
        self.part_counters[si][ci] += core.delta;
        let (shared, alu, syncs) = core.layer_cost;
        for lc in self.layer_counters[..core.dec.layers.len()].iter_mut() {
            lc.shared_accesses += shared;
            lc.alu_ops += alu;
            lc.block_syncs += syncs;
            lc.executions += 1;
        }
    }

    /// Accumulated counters.
    pub fn counters(&self) -> &KernelCounters {
        &self.counters
    }

    /// Device totals refined per partition and per boomerang layer.
    pub fn breakdown(&self) -> CounterBreakdown {
        let partitions = self
            .part_counters
            .iter()
            .enumerate()
            .flat_map(|(si, st)| {
                st.iter().enumerate().map(move |(ci, c)| PartitionCounters {
                    stage: si as u32,
                    core: ci as u32,
                    counters: *c,
                })
            })
            .collect();
        CounterBreakdown {
            total: self.counters,
            partitions,
            layers: self.layer_counters.clone(),
        }
    }

    /// The current [`breakdown`](Self::breakdown) as exportable labeled
    /// metric families.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.breakdown().to_metrics_snapshot()
    }

    /// Captures the complete mutable state of the machine.
    pub fn snapshot(&self) -> GpuSnapshot {
        GpuSnapshot {
            global: self.global.clone(),
            deferred: self.deferred.clone(),
            ram_mem: self.ram_mem.clone(),
            counters: self.counters,
            part_counters: self.part_counters.clone(),
            layer_counters: self.layer_counters.clone(),
            input_cache: self.input_cache.clone(),
        }
    }

    /// Restores a [`snapshot`](Self::snapshot), resuming execution
    /// bit-exactly. The snapshot must come from a machine loaded with a
    /// structurally identical bitstream and device configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::SnapshotMismatch`] (leaving the machine
    /// untouched) when any state dimension differs from the loaded
    /// design.
    pub fn restore(&mut self, s: &GpuSnapshot) -> Result<(), MachineError> {
        if s.global.len() != self.global.len() {
            return Err(MachineError::SnapshotMismatch(format!(
                "global array is {} bits, design has {}",
                s.global.len(),
                self.global.len()
            )));
        }
        if s.ram_mem.len() != self.ram_mem.len() {
            return Err(MachineError::SnapshotMismatch(format!(
                "{} RAM blocks, design has {}",
                s.ram_mem.len(),
                self.ram_mem.len()
            )));
        }
        let part_shape =
            |pc: &Vec<Vec<KernelCounters>>| -> Vec<usize> { pc.iter().map(Vec::len).collect() };
        if part_shape(&s.part_counters) != part_shape(&self.part_counters) {
            return Err(MachineError::SnapshotMismatch(
                "partition shape differs".to_string(),
            ));
        }
        if s.layer_counters.len() != self.layer_counters.len() {
            return Err(MachineError::SnapshotMismatch(format!(
                "{} layers, design has {}",
                s.layer_counters.len(),
                self.layer_counters.len()
            )));
        }
        let cache_shape =
            |ic: &Vec<Vec<Option<Vec<bool>>>>| -> Vec<usize> { ic.iter().map(Vec::len).collect() };
        if cache_shape(&s.input_cache) != cache_shape(&self.input_cache) {
            return Err(MachineError::SnapshotMismatch(
                "pruning cache shape differs".to_string(),
            ));
        }
        self.global.clone_from(&s.global);
        self.deferred.clone_from(&s.deferred);
        self.ram_mem.clone_from(&s.ram_mem);
        self.counters = s.counters;
        self.part_counters.clone_from(&s.part_counters);
        self.layer_counters.clone_from(&s.layer_counters);
        self.input_cache.clone_from(&s.input_cache);
        Ok(())
    }

    /// Number of pipeline stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total cores (thread blocks) across stages.
    pub fn num_cores(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_isa::{assemble_core, ReadEntry, WriteEntry};
    use gem_place::{BoomerangLayer, CoreProgram, OutputSource, PermSource};

    /// A one-core bitstream computing g2 = g0 AND g1 into global 2.
    fn and_bitstream() -> (Bitstream, DeviceConfig) {
        let width = 16u32;
        let mut layer = BoomerangLayer::new(width);
        layer.perm[0] = PermSource::State(0);
        layer.perm[1] = PermSource::State(1);
        layer.writeback[0][0] = Some(2);
        let prog = CoreProgram {
            width,
            state_size: 3,
            inputs: vec![],
            layers: vec![layer],
            outputs: vec![OutputSource::State {
                addr: 2,
                invert: false,
            }],
        };
        let reads = vec![
            ReadEntry {
                global: 0,
                state: 0,
            },
            ReadEntry {
                global: 1,
                state: 1,
            },
        ];
        let writes = vec![WriteEntry {
            global: 2,
            src: gem_isa::WriteSrc::State {
                addr: 2,
                invert: false,
            },
            deferred: false,
        }];
        let bytes = assemble_core(&prog, &reads, &writes);
        (
            Bitstream {
                width,
                global_bits: 3,
                stages: vec![vec![bytes]],
            },
            DeviceConfig {
                global_bits: 3,
                rams: vec![],
                initial_ones: vec![],
            },
        )
    }

    #[test]
    fn executes_simple_and() {
        let (bs, cfg) = and_bitstream();
        let mut gpu = GemGpu::load(&bs, cfg).expect("loads");
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            gpu.poke(0, a);
            gpu.poke(1, b);
            gpu.step_cycle();
            assert_eq!(gpu.peek(2), a && b);
        }
        let c = gpu.counters();
        assert_eq!(c.cycles, 4);
        assert!(c.global_bytes > 0);
        assert!(c.device_syncs >= 8); // stage + cycle boundary per cycle
    }

    #[test]
    fn counters_scale_linearly_with_cycles() {
        let (bs, cfg) = and_bitstream();
        let mut gpu = GemGpu::load(&bs, cfg).expect("loads");
        gpu.poke(0, true);
        gpu.poke(1, true);
        gpu.step_cycle();
        let one = *gpu.counters();
        for _ in 0..9 {
            gpu.step_cycle();
        }
        let ten = *gpu.counters();
        assert_eq!(ten.global_bytes, one.global_bytes * 10);
        assert_eq!(ten.blocks_run, 10);
    }

    #[test]
    fn breakdown_reconciles_with_totals() {
        let (bs, cfg) = and_bitstream();
        let mut gpu = GemGpu::load(&bs, cfg).expect("loads");
        gpu.poke(0, true);
        gpu.poke(1, true);
        for _ in 0..5 {
            gpu.step_cycle();
        }
        let bd = gpu.breakdown();
        let sum = bd.partition_sum();
        let t = bd.total;
        assert_eq!(sum.alu_ops, t.alu_ops);
        assert_eq!(sum.shared_accesses, t.shared_accesses);
        assert_eq!(sum.block_syncs, t.block_syncs);
        assert_eq!(sum.blocks_run, t.blocks_run);
        // RAM-free design: even global traffic reconciles exactly.
        assert_eq!(sum.global_bytes, t.global_bytes);
        assert_eq!(sum.global_transactions, t.global_transactions);
        // Device-level events are never attributed to a partition.
        assert_eq!(sum.device_syncs, 0);
        assert_eq!(sum.cycles, 0);
        assert_eq!(bd.partitions.len(), 1);
        assert_eq!(bd.layers.len(), 1);
        assert_eq!(bd.layers[0].executions, 5);
        let snap = gpu.metrics_snapshot();
        assert_eq!(
            snap.family("gem_alu_ops_total").unwrap().total(),
            t.alu_ops as f64
        );
    }

    #[test]
    fn snapshot_restore_resumes_bit_exactly() {
        let (bs, cfg) = and_bitstream();
        let mut gpu = GemGpu::load(&bs, cfg.clone()).expect("loads");
        gpu.poke(0, true);
        gpu.poke(1, true);
        gpu.step_cycle();
        let snap = gpu.snapshot();
        // Diverge, then restore and replay: the continuations must match.
        gpu.poke(0, false);
        gpu.step_cycle();
        gpu.restore(&snap).expect("restores");
        gpu.poke(0, true);
        gpu.step_cycle();
        assert!(gpu.peek(2));
        assert_eq!(gpu.counters().cycles, 2, "counters restored with state");

        // A second machine restored from the same snapshot tracks the
        // first exactly.
        let mut other = GemGpu::load(&bs, cfg).expect("loads");
        other.restore(&snap).expect("restores");
        other.poke(0, true);
        other.poke(1, true);
        other.step_cycle();
        assert_eq!(other.peek(2), gpu.peek(2));
        assert_eq!(other.counters(), gpu.counters());
        assert!(snap.approx_bytes() > 0);
    }

    #[test]
    fn mismatched_snapshot_rejected() {
        let (bs, cfg) = and_bitstream();
        let gpu = GemGpu::load(&bs, cfg).expect("loads");
        let snap = gpu.snapshot();
        // A differently shaped machine must refuse the snapshot.
        let bs2 = Bitstream {
            width: 16,
            global_bits: 64 + 59,
            stages: vec![],
        };
        let mut idx = 0u32;
        let mut next = || {
            let i = idx;
            idx += 1;
            i
        };
        let cfg2 = DeviceConfig {
            global_bits: 123,
            rams: vec![RamBinding {
                raddr: std::array::from_fn(|_| next()),
                waddr: std::array::from_fn(|_| next()),
                wdata: std::array::from_fn(|_| next()),
                we: next(),
                rdata: std::array::from_fn(|_| next()),
            }],
            initial_ones: vec![],
        };
        let mut other = GemGpu::load(&bs2, cfg2).expect("loads");
        let before = other.snapshot();
        assert!(matches!(
            other.restore(&snap),
            Err(MachineError::SnapshotMismatch(_))
        ));
        assert_eq!(other.snapshot(), before, "failed restore must not mutate");
    }

    #[test]
    fn bad_global_index_rejected() {
        let (mut bs, cfg) = and_bitstream();
        // Corrupt: claim a smaller global space than the programs use.
        bs.global_bits = 1;
        let cfg = DeviceConfig {
            global_bits: 1,
            ..cfg
        };
        assert!(matches!(
            GemGpu::load(&bs, cfg),
            Err(MachineError::BadBinding(_))
        ));
    }

    #[test]
    fn ram_phase_read_first() {
        // No cores: drive RAM ports directly through pokes.
        let bs = Bitstream {
            width: 16,
            global_bits: 64 + 59,
            stages: vec![],
        };
        let mut idx = 0u32;
        let mut next = || {
            let i = idx;
            idx += 1;
            i
        };
        let binding = RamBinding {
            raddr: std::array::from_fn(|_| next()),
            waddr: std::array::from_fn(|_| next()),
            wdata: std::array::from_fn(|_| next()),
            we: next(),
            rdata: std::array::from_fn(|_| next()),
        };
        let cfg = DeviceConfig {
            global_bits: 123,
            rams: vec![binding.clone()],
            initial_ones: vec![],
        };
        let mut gpu = GemGpu::load(&bs, cfg).expect("loads");
        // Write 0b101 to address 0 while reading address 0.
        gpu.poke(binding.we, true);
        gpu.poke(binding.wdata[0], true);
        gpu.poke(binding.wdata[2], true);
        gpu.step_cycle();
        assert!(!gpu.peek(binding.rdata[0]), "read-first returns old zero");
        gpu.poke(binding.we, false);
        gpu.step_cycle();
        assert!(gpu.peek(binding.rdata[0]));
        assert!(gpu.peek(binding.rdata[2]));
        assert!(!gpu.peek(binding.rdata[1]));
        assert_eq!(gpu.ram_word(0, 0), 0b101);
    }
}

#[cfg(test)]
mod pruning_tests {
    use super::*;
    use gem_isa::{assemble_core, ReadEntry, WriteEntry};
    use gem_place::{BoomerangLayer, CoreProgram, OutputSource, PermSource};

    /// Two cores: core A computes g2 = g0 & g1 (immediate), core B computes
    /// g3 = !g2 (deferred), with a deliberately bursty input pattern so
    /// pruning has skippable cycles.
    fn two_core_machine() -> GemGpu {
        let width = 16u32;
        let mk_core = |perm0: u32, perm1: Option<u32>, invert: bool, out_g: u32, deferred: bool| {
            let mut layer = BoomerangLayer::new(width);
            layer.perm[0] = PermSource::State(0);
            layer.perm[1] = match perm1 {
                Some(_) => PermSource::State(1),
                None => PermSource::ConstFalse,
            };
            if perm1.is_none() {
                layer.folds[0].ob[0] = true; // bypass: out = A
            }
            layer.writeback[0][0] = Some(2);
            let prog = CoreProgram {
                width,
                state_size: 3,
                inputs: vec![],
                layers: vec![layer],
                outputs: vec![OutputSource::State {
                    addr: 2,
                    invert: false,
                }],
            };
            let mut reads = vec![ReadEntry {
                global: perm0,
                state: 0,
            }];
            if let Some(g1) = perm1 {
                reads.push(ReadEntry {
                    global: g1,
                    state: 1,
                });
            }
            let writes = vec![WriteEntry {
                global: out_g,
                src: gem_isa::WriteSrc::State { addr: 2, invert },
                deferred,
            }];
            assemble_core(&prog, &reads, &writes)
        };
        let bs = Bitstream {
            width,
            global_bits: 4,
            stages: vec![
                vec![mk_core(0, Some(1), false, 2, false)],
                vec![mk_core(2, None, true, 3, true)],
            ],
        };
        GemGpu::load(
            &bs,
            DeviceConfig {
                global_bits: 4,
                rams: vec![],
                initial_ones: vec![],
            },
        )
        .expect("loads")
    }

    #[test]
    fn pruning_preserves_outputs_exactly() {
        let mut base = two_core_machine();
        let mut pruned = two_core_machine();
        pruned.set_pruning(true);
        let pattern = [
            (false, false),
            (true, true),
            (true, true), // repeat: core A skippable
            (true, true),
            (false, true),
            (false, true),
            (true, false),
            (true, false),
        ];
        for (a, b) in pattern {
            base.poke(0, a);
            base.poke(1, b);
            pruned.poke(0, a);
            pruned.poke(1, b);
            base.step_cycle();
            pruned.step_cycle();
            assert_eq!(base.peek(2), pruned.peek(2));
            assert_eq!(base.peek(3), pruned.peek(3));
            assert_eq!(base.peek(2), a && b);
            assert_eq!(base.peek(3), !(a && b));
        }
        let c = pruned.counters();
        assert!(c.blocks_skipped > 0, "repeats must be skipped");
        assert!(
            c.global_bytes < base.counters().global_bytes,
            "pruning must save instruction traffic"
        );
    }

    #[test]
    fn pruning_off_by_default_and_resettable() {
        let mut gpu = two_core_machine();
        for _ in 0..4 {
            gpu.step_cycle();
        }
        assert_eq!(gpu.counters().blocks_skipped, 0);
        gpu.set_pruning(true);
        for _ in 0..4 {
            gpu.step_cycle();
        }
        assert!(gpu.counters().blocks_skipped > 0);
        gpu.set_pruning(false);
        let skipped = gpu.counters().blocks_skipped;
        for _ in 0..4 {
            gpu.step_cycle();
        }
        assert_eq!(gpu.counters().blocks_skipped, skipped);
    }
}
