//! A software model of the SIMT machine GEM targets.
//!
//! The paper runs its VLIW interpreter as a CUDA kernel on NVIDIA A100 and
//! RTX 3090 GPUs. This crate substitutes that hardware with an
//! instrumented virtual GPU (see DESIGN.md §3): the [`machine::GemGpu`]
//! executes assembled GEM bitstreams **bit-exactly** — same per-block
//! shared-memory semantics, same once-per-cycle coalesced global reads,
//! same device-wide synchronization points — while counting the
//! architectural events that determine real GPU runtime:
//!
//! * global-memory bytes and 128-byte transactions (instruction streaming
//!   dominates: the bitstream is re-read every simulated cycle),
//! * shared-memory accesses (the local, cheap irregularity of
//!   Observation 2),
//! * fold ALU operations,
//! * block-level and device-level synchronizations.
//!
//! [`timing::TimingModel`] converts those counts into estimated simulated
//! cycles per second for a given [`spec::GpuSpec`] (A100 and RTX 3090
//! presets), which is what Table II reports. [`gl0am`] provides the same
//! treatment for the LUT4 gate-level baseline the paper compares against.

pub mod compiled;
pub mod counters;
pub mod exec;
pub mod gl0am;
pub mod machine;
pub mod spec;
pub mod timing;

pub use compiled::{CompiledCore, CompiledWrite, WRITE_CONST};
pub use counters::{
    CounterBreakdown, KernelCounters, KernelRates, LayerCounters, PartitionCounters,
};
pub use exec::{ExecBackend, ExecMode, ExecStats, StageWait};
pub use gl0am::Gl0amModel;
pub use machine::{DeviceConfig, GemGpu, GpuSnapshot, MachineError, RamBinding};
pub use spec::GpuSpec;
pub use timing::TimingModel;
