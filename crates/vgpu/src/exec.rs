//! Parallel execution engine for the virtual GPU.
//!
//! The paper's CUDA kernel runs every virtual VLIW core as one thread
//! block; cores of the same pipeline stage execute **concurrently** and
//! meet at a grid-wide synchronization before the next stage reads their
//! cut signals. This module gives the software model the same execution
//! shape: a persistent, dependency-free pool of OS threads
//! ([`CorePool`]) fans the cores of a stage out, and the stepping thread
//! waits at a barrier until every core of the stage has returned its
//! outbox (see `machine.rs` for the outbox discipline that removes all
//! shared mutable state inside a stage).
//!
//! The pool mirrors the design language of `gem-server`'s `WorkerPool`
//! (mutex + condvar job queue, named threads, drop-joins), but is built
//! for compute fan-out rather than request scheduling: the queue is
//! unbounded (a stage submits exactly `cores` jobs and immediately waits
//! for them — backpressure is meaningless here), and the pool persists
//! across cycles so the per-cycle cost is one enqueue per core, not one
//! thread spawn.
//!
//! **Determinism is non-negotiable.** Parallelism changes *when* a core
//! runs, never *what it computes or how results merge*: cores read an
//! immutable snapshot of the global signal array, and the coordinator
//! merges their outboxes in core order at the barrier. One thread and N
//! threads therefore produce bit-identical waveforms and bit-identical
//! merged [`crate::KernelCounters`] (see `docs/PARALLEL.md` for the full
//! argument).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How the virtual GPU executes the cores of a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// All cores run on the stepping thread, in core order.
    Serial,
    /// Cores of a stage fan out over this many persistent worker
    /// threads with a barrier at the stage boundary. Values below 2 are
    /// equivalent to [`Serial`](ExecMode::Serial).
    Parallel(usize),
}

impl ExecMode {
    /// Normalizes a thread-count knob: `0` and `1` mean serial.
    pub fn from_threads(threads: usize) -> ExecMode {
        if threads < 2 {
            ExecMode::Serial
        } else {
            ExecMode::Parallel(threads)
        }
    }

    /// Worker threads implied by the mode (serial counts as 1).
    pub fn threads(self) -> usize {
        match self {
            ExecMode::Serial => 1,
            ExecMode::Parallel(n) => n.max(2),
        }
    }

    /// The process-wide default: the `GEM_THREADS` environment variable
    /// when set (`0` or unparsable falls through), otherwise the host's
    /// available parallelism. `GEM_THREADS=1` forces serial execution —
    /// the knob CI uses to run the whole suite in both shapes.
    pub fn resolved_default() -> ExecMode {
        if let Ok(v) = std::env::var("GEM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return ExecMode::from_threads(n);
                }
            }
        }
        let host = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        ExecMode::from_threads(host)
    }
}

/// How the virtual GPU evaluates one core's program: the backend axis,
/// orthogonal to [`ExecMode`] (threads) and to lane batching. Both
/// backends execute the same decoded bitstream with identical
/// semantics and identical [`crate::KernelCounters`]; only host
/// wall-clock differs (see `docs/COMPILED.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// Walk the decoded program every cycle, re-interpreting enum tags,
    /// `bool` constants, and `Option` writeback slots — the reference
    /// executor ([`gem_place::BoomerangLayer::execute_words`] under the
    /// hood).
    #[default]
    Interpreted,
    /// Execute the threaded-code form lowered once at load: flat
    /// operand index arrays, pre-splatted fold masks, sparse writeback
    /// lists, reusable scratch buffers — no per-cycle dispatch or
    /// allocation (see [`crate::CompiledCore`]).
    Compiled,
}

impl ExecBackend {
    /// Parses a backend name as accepted by the `--backend` CLI flags,
    /// the server's `backend` open option, and `GEM_BACKEND`.
    pub fn parse(s: &str) -> Option<ExecBackend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "interpreted" | "interp" => Some(ExecBackend::Interpreted),
            "compiled" | "threaded" => Some(ExecBackend::Compiled),
            _ => None,
        }
    }

    /// Canonical name (what [`parse`](Self::parse) round-trips).
    pub fn name(self) -> &'static str {
        match self {
            ExecBackend::Interpreted => "interpreted",
            ExecBackend::Compiled => "compiled",
        }
    }

    /// The process-wide default: the `GEM_BACKEND` environment variable
    /// when it names a backend (unset or unparsable falls back to
    /// [`Interpreted`](ExecBackend::Interpreted)). This is the knob CI
    /// uses to run the whole suite under each backend.
    pub fn resolved_default() -> ExecBackend {
        std::env::var("GEM_BACKEND")
            .ok()
            .and_then(|v| ExecBackend::parse(&v))
            .unwrap_or_default()
    }
}

impl std::fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Host-side execution statistics of one machine (not part of the
/// simulated architecture: wall-clock barrier waits are *measured*, so
/// they are excluded from [`crate::GpuSnapshot`] and from the
/// determinism contract — only [`crate::KernelCounters`] are replayed
/// bit-exactly).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Configured worker threads (1 when serial).
    pub threads: usize,
    /// Configured execution backend (interpreted or compiled threaded
    /// code). Like `threads`, this is host configuration, not simulated
    /// state: it never enters a snapshot.
    pub backend: ExecBackend,
    /// Active stimulus bit-lanes each step advances (1 when
    /// single-stimulus; see `docs/BATCH.md`). Lanes multiply with
    /// threads: a stage fans out `cores` tasks regardless of lanes, and
    /// every task carries all lanes through the fold network.
    pub lanes: u32,
    /// Core executions dispatched to the pool (serial cores not counted).
    pub parallel_tasks: u64,
    /// Stage barriers the coordinator waited on.
    pub stage_barriers: u64,
    /// Total nanoseconds the coordinator spent waiting at stage barriers.
    pub barrier_wait_nanos: u64,
    /// Total nanoseconds cores spent idle at stage barriers (each core's
    /// gap between finishing its own work and the stage's slowest core
    /// finishing — the load-imbalance cost; see [`StageWait::idle_nanos`]).
    pub core_idle_nanos: u64,
    /// Per-pipeline-stage refinement of the barrier waits.
    pub per_stage: Vec<StageWait>,
}

/// Barrier-wait accounting for one pipeline stage.
///
/// Two complementary wait measures are kept **per stage** (an earlier
/// revision summed everything into one machine-wide counter, which made
/// it impossible to say *which* stage boundary was eating the wall-clock
/// gap): `wait_nanos` is the coordinator's blocking time at this stage's
/// barrier, `idle_nanos` is the cores' summed wait for their slowest
/// peer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageWait {
    /// Pipeline stage index.
    pub stage: u32,
    /// Barriers waited on at this stage boundary.
    pub barriers: u64,
    /// Nanoseconds the coordinator spent waiting at this stage's barrier.
    pub wait_nanos: u64,
    /// Nanoseconds cores spent idle at this stage's barrier, summed over
    /// cores: Σ (slowest core's finish − this core's finish). Zero means
    /// perfectly balanced partitions; a large value marks the stage whose
    /// load imbalance bounds the parallel speedup.
    pub idle_nanos: u64,
    /// Core tasks fanned out at this stage.
    pub tasks: u64,
}

impl ExecStats {
    pub(crate) fn record_stage(
        &mut self,
        stage: usize,
        tasks: u64,
        wait_nanos: u64,
        idle_nanos: u64,
    ) {
        if self.per_stage.len() <= stage {
            self.per_stage.resize_with(stage + 1, StageWait::default);
            for (i, s) in self.per_stage.iter_mut().enumerate() {
                s.stage = i as u32;
            }
        }
        let s = &mut self.per_stage[stage];
        s.barriers += 1;
        s.wait_nanos += wait_nanos;
        s.idle_nanos += idle_nanos;
        s.tasks += tasks;
        self.stage_barriers += 1;
        self.barrier_wait_nanos += wait_nanos;
        self.core_idle_nanos += idle_nanos;
        self.parallel_tasks += tasks;
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
}

/// Persistent compute fan-out pool (see the module docs). Shared via
/// `Arc` by cloned machines; concurrent submitters are safe because
/// every barrier collects results over its own private channel.
pub(crate) struct CorePool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for CorePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CorePool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl CorePool {
    /// Spawns `threads` workers (clamped to at least 1).
    pub(crate) fn new(threads: usize) -> CorePool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gem-vcore-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn vgpu core worker")
            })
            .collect();
        CorePool { shared, workers }
    }

    /// Number of worker threads.
    pub(crate) fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one job (unbounded; never blocks).
    pub(crate) fn submit(&self, job: Job) {
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert!(!st.shutdown, "submit after shutdown");
            st.jobs.push_back(job);
        }
        self.shared.available.notify_one();
    }
}

impl Drop for CorePool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(j) = st.jobs.pop_front() {
                    break j;
                }
                if st.shutdown {
                    return;
                }
                st = shared.available.wait(st).unwrap();
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn exec_mode_normalizes_thread_counts() {
        assert_eq!(ExecMode::from_threads(0), ExecMode::Serial);
        assert_eq!(ExecMode::from_threads(1), ExecMode::Serial);
        assert_eq!(ExecMode::from_threads(4), ExecMode::Parallel(4));
        assert_eq!(ExecMode::Serial.threads(), 1);
        assert_eq!(ExecMode::Parallel(4).threads(), 4);
        // The default resolves to *something* executable.
        assert!(ExecMode::resolved_default().threads() >= 1);
    }

    #[test]
    fn backend_parse_round_trips_and_defaults() {
        assert_eq!(
            ExecBackend::parse("interpreted"),
            Some(ExecBackend::Interpreted)
        );
        assert_eq!(ExecBackend::parse("Compiled"), Some(ExecBackend::Compiled));
        assert_eq!(
            ExecBackend::parse(" threaded "),
            Some(ExecBackend::Compiled)
        );
        assert_eq!(ExecBackend::parse("cuda"), None);
        for b in [ExecBackend::Interpreted, ExecBackend::Compiled] {
            assert_eq!(ExecBackend::parse(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(ExecBackend::default(), ExecBackend::Interpreted);
    }

    #[test]
    fn pool_runs_jobs_and_drop_joins() {
        let pool = CorePool::new(3);
        assert_eq!(pool.threads(), 3);
        let ran = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..32 {
            let ran = Arc::clone(&ran);
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..32 {
            rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        drop(pool); // joins workers
        assert_eq!(ran.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn concurrent_submitters_collect_only_their_results() {
        // Two "machines" sharing one pool must never cross wires: each
        // barrier owns a private channel.
        let pool = Arc::new(CorePool::new(2));
        let mut joins = Vec::new();
        for tag in 0..2u64 {
            let pool = Arc::clone(&pool);
            joins.push(std::thread::spawn(move || {
                let (tx, rx) = mpsc::channel();
                for i in 0..16u64 {
                    let tx = tx.clone();
                    pool.submit(Box::new(move || {
                        tx.send(tag * 1000 + i).unwrap();
                    }));
                }
                drop(tx);
                let mut got: Vec<u64> = rx.iter().collect();
                got.sort_unstable();
                assert_eq!(got, (0..16).map(|i| tag * 1000 + i).collect::<Vec<_>>());
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn stage_waits_accumulate_per_stage() {
        let mut s = ExecStats::default();
        s.record_stage(1, 4, 100, 30);
        s.record_stage(0, 2, 50, 10);
        s.record_stage(1, 4, 25, 5);
        assert_eq!(s.stage_barriers, 3);
        assert_eq!(s.barrier_wait_nanos, 175);
        assert_eq!(s.core_idle_nanos, 45);
        assert_eq!(s.parallel_tasks, 10);
        assert_eq!(s.per_stage.len(), 2);
        assert_eq!(s.per_stage[0].stage, 0);
        assert_eq!(s.per_stage[0].barriers, 1);
        assert_eq!(s.per_stage[0].idle_nanos, 10);
        assert_eq!(s.per_stage[1].wait_nanos, 125);
        assert_eq!(s.per_stage[1].idle_nanos, 35);
        assert_eq!(s.per_stage[1].tasks, 8);
    }
}
