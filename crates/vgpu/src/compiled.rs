//! Per-core threaded-code specialization for the compiled execution
//! backend (`docs/COMPILED.md`).
//!
//! [`CompiledCore::lower`] runs once per core at bitstream load and
//! resolves everything [`execute_core`] would otherwise re-derive every
//! cycle: global↔state operand indices for the read gather, the layer
//! programs (via [`gem_place::CompiledLayer`]), and the write plan —
//! split into immediate and deferred lists with the `State`/`Const`
//! source tags and invert flags folded into a per-entry XOR mask, so
//! the publish loop is branch-free.
//!
//! The backend also removes the interpreter's per-core-per-cycle heap
//! traffic: each executing thread (the stepping thread and every
//! `gem-vcore` worker) owns one thread-local [`Scratch`] whose state
//! and row buffers are recycled across cores and cycles.
//!
//! Equivalence contract: for any decoded core, the compiled execution
//! produces exactly the interpreter's immediate writes, deferred
//! writes, and counter deltas, in the same order — the backend matrix
//! in `gem-sim`'s differential fuzz suite and the golden VCD corpus
//! hold both backends to that, bit for bit.
//!
//! [`execute_core`]: crate::machine::GemGpu

use gem_isa::{DecodedCore, WriteSrc};
use gem_place::{splat, CompiledLayer, Word};
use std::cell::RefCell;

/// Sentinel in [`CompiledWrite::addr`]: the entry publishes a constant
/// (its lane word is [`CompiledWrite::xor`]) rather than a state bit.
pub const WRITE_CONST: u32 = u32::MAX;

/// One pre-resolved `WRITE_GLOBAL` entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledWrite {
    /// Destination index in the device-global signal array.
    pub global: u32,
    /// Source state address, or [`WRITE_CONST`].
    pub addr: u32,
    /// Pre-splatted invert mask (or the constant's lane word when
    /// `addr == WRITE_CONST`).
    pub xor: Word,
}

impl CompiledWrite {
    /// The lane word this entry publishes given the core state.
    #[inline]
    fn value(&self, state: &[Word]) -> Word {
        if self.addr == WRITE_CONST {
            self.xor
        } else {
            state[self.addr as usize] ^ self.xor
        }
    }
}

/// A whole core program in threaded-code form; see the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledCore {
    /// Core row width (scratch state size).
    pub width: u32,
    /// Read gather: `(global index, state address)` pairs.
    pub reads: Box<[(u32, u32)]>,
    /// Lowered boomerang layers, in execution order.
    pub layers: Box<[CompiledLayer]>,
    /// Immediate writes (stage-boundary visibility), in program order.
    pub immediate: Box<[CompiledWrite]>,
    /// Deferred writes (cycle-boundary commit), in program order.
    pub deferred: Box<[CompiledWrite]>,
}

impl CompiledCore {
    /// Lowers a decoded core. Pure and total over decoder output: the
    /// decoder has already bounds-checked every state address against
    /// the core width, so lowering never panics.
    pub fn lower(dec: &DecodedCore) -> CompiledCore {
        let lower_write = |w: &gem_isa::WriteEntry| match w.src {
            WriteSrc::State { addr, invert } => CompiledWrite {
                global: w.global,
                addr: u32::from(addr),
                xor: splat(invert),
            },
            WriteSrc::Const(c) => CompiledWrite {
                global: w.global,
                addr: WRITE_CONST,
                xor: splat(c),
            },
        };
        CompiledCore {
            width: dec.width,
            reads: dec
                .reads
                .iter()
                .map(|r| (r.global, u32::from(r.state)))
                .collect(),
            // Constant-zero gather slots load from the extra state slot
            // at index `width` (kept zero by the executor below; layer
            // writebacks are bounds-checked below `width` by the
            // decoder), so the gather never branches on the sentinel.
            layers: dec
                .layers
                .iter()
                .map(|l| {
                    let mut comp = CompiledLayer::lower(l);
                    comp.redirect_consts(dec.width);
                    comp
                })
                .collect(),
            immediate: dec
                .writes
                .iter()
                .filter(|w| !w.deferred)
                .map(lower_write)
                .collect(),
            deferred: dec
                .writes
                .iter()
                .filter(|w| w.deferred)
                .map(lower_write)
                .collect(),
        }
    }

    /// Executes one cycle of the core against a stage-start global
    /// snapshot, appending its immediate and deferred lane words to the
    /// output buffers. `scratch` provides the recycled state and row
    /// buffers; all visible effects go through `imm_out` / `def_out`.
    pub fn execute_words_into(
        &self,
        global: &[Word],
        scratch: &mut Scratch,
        imm_out: &mut Vec<(u32, Word)>,
        def_out: &mut Vec<(u32, Word)>,
    ) {
        let Scratch { state, row, next } = scratch;
        state.clear();
        // One slot past the core width stays zero: the redirected
        // constant gather slots (see `lower`) read it.
        state.resize(self.width as usize + 1, 0);
        for &(g, s) in self.reads.iter() {
            state[s as usize] = global[g as usize];
        }
        for layer in self.layers.iter() {
            layer.execute_words_into(state, row, next);
        }
        imm_out.reserve(self.immediate.len());
        for w in self.immediate.iter() {
            imm_out.push((w.global, w.value(state)));
        }
        def_out.reserve(self.deferred.len());
        for w in self.deferred.iter() {
            def_out.push((w.global, w.value(state)));
        }
    }

    /// Total lowered ops per execution as the counter model charges
    /// them: `(shared_accesses, alu_ops, block_syncs)` summed over
    /// layers. Reconciles with the static `KernelCounters` delta the
    /// machine computes from the decoded program.
    pub fn layer_op_totals(&self) -> (u64, u64, u64) {
        self.layers.iter().fold((0, 0, 0), |acc, l| {
            (
                acc.0 + l.shared_accesses(),
                acc.1 + l.alu_ops(),
                acc.2 + l.block_syncs(),
            )
        })
    }
}

/// Reusable per-thread execution buffers: the core state vector and the
/// two ping-pong fold rows. Capacity survives across cores and cycles,
/// so the compiled backend's steady state performs no heap allocation
/// inside the fold network.
#[derive(Debug, Default)]
pub struct Scratch {
    state: Vec<Word>,
    row: Vec<Word>,
    next: Vec<Word>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Runs `f` with the calling thread's [`Scratch`].
pub fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_isa::{ReadEntry, WriteEntry};
    use gem_place::{BoomerangLayer, PermSource};

    fn sample_core() -> DecodedCore {
        let mut layer = BoomerangLayer::new(4);
        layer.perm[0] = PermSource::State(0);
        layer.perm[1] = PermSource::State(1);
        layer.writeback[0][0] = Some(2);
        DecodedCore {
            width: 4,
            state_size: 3,
            reads: vec![
                ReadEntry {
                    global: 5,
                    state: 0,
                },
                ReadEntry {
                    global: 6,
                    state: 1,
                },
            ],
            layers: vec![layer],
            writes: vec![
                WriteEntry {
                    global: 7,
                    src: WriteSrc::State {
                        addr: 2,
                        invert: true,
                    },
                    deferred: false,
                },
                WriteEntry {
                    global: 8,
                    src: WriteSrc::Const(true),
                    deferred: true,
                },
            ],
        }
    }

    #[test]
    fn lowering_splits_and_resolves_writes() {
        let comp = CompiledCore::lower(&sample_core());
        assert_eq!(&*comp.reads, &[(5, 0), (6, 1)]);
        assert_eq!(comp.immediate.len(), 1);
        assert_eq!(comp.deferred.len(), 1);
        assert_eq!(
            comp.immediate[0],
            CompiledWrite {
                global: 7,
                addr: 2,
                xor: Word::MAX
            }
        );
        assert_eq!(
            comp.deferred[0],
            CompiledWrite {
                global: 8,
                addr: WRITE_CONST,
                xor: Word::MAX
            }
        );
    }

    #[test]
    fn execution_matches_hand_interpretation() {
        let comp = CompiledCore::lower(&sample_core());
        // global[5] = a, global[6] = b → immediate (7, !(a&b)),
        // deferred (8, ones).
        let mut global: Vec<Word> = vec![0; 9];
        global[5] = 0b1010;
        global[6] = 0b1100;
        let mut imm = Vec::new();
        let mut def = Vec::new();
        with_scratch(|s| comp.execute_words_into(&global, s, &mut imm, &mut def));
        assert_eq!(imm, vec![(7, !(0b1010 as Word & 0b1100))]);
        assert_eq!(def, vec![(8, Word::MAX)]);
    }

    #[test]
    fn op_totals_follow_layer_costs() {
        let comp = CompiledCore::lower(&sample_core());
        // One 4-wide layer: 8 shared accesses, 3 ALU ops, 3 syncs.
        assert_eq!(comp.layer_op_totals(), (8, 3, 3));
    }
}
