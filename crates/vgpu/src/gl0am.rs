//! GL0AM-style gate-level GPU simulation model (the paper's GPU baseline).
//!
//! GL0AM simulates at gate level with 0-delay re-simulation: each cycle,
//! gates affected by changed inputs are re-evaluated by GPU threads that
//! fetch operand values and truth tables from global memory — irregular,
//! per-gate accesses, exactly the pattern GEM's design avoids. The model
//! here executes the E-AIG functionally with event-driven re-simulation
//! (so its activity-dependence matches the real tool) and charges:
//!
//! * per re-simulated gate: two operand fetches, one truth-table fetch and
//!   one result store, each an uncoalesced 32-byte transaction;
//! * one device-wide synchronization per active logic level (levelized
//!   0-delay evaluation).
//!
//! This reproduces both of GL0AM's published behaviours: it beats CPU
//! simulators on large designs but trails GEM by roughly an order of
//! magnitude, and its speed varies with workload activity.

use crate::counters::KernelCounters;
use gem_aig::{Eaig, Lit, Node, RAM_ADDR_BITS};

/// Functional + cost model of a GL0AM-like gate-level GPU simulator.
#[derive(Debug)]
pub struct Gl0amModel<'a> {
    g: &'a Eaig,
    vals: Vec<bool>,
    ff: Vec<bool>,
    ram: Vec<Box<[u32]>>,
    ram_rdata: Vec<u32>,
    levels: Vec<u32>,
    fanouts: Vec<Vec<u32>>,
    dirty: Vec<Vec<u32>>,
    on_list: Vec<bool>,
    counters: KernelCounters,
}

/// Bytes charged per irregular gate-level access (one 32-byte sector).
const SECTOR: u64 = 32;

impl<'a> Gl0amModel<'a> {
    /// Creates a model with power-on state.
    pub fn new(g: &'a Eaig) -> Self {
        let levels = g.node_levels().to_vec();
        let mut fanouts = vec![Vec::new(); g.len()];
        for (i, n) in g.nodes().iter().enumerate() {
            if let Node::And(a, b) = n {
                fanouts[a.node().0 as usize].push(i as u32);
                if a.node() != b.node() {
                    fanouts[b.node().0 as usize].push(i as u32);
                }
            }
        }
        let depth = levels.iter().copied().max().unwrap_or(0) as usize;
        let mut m = Gl0amModel {
            vals: vec![false; g.len()],
            ff: g.ffs().iter().map(|f| f.init).collect(),
            ram: g
                .rams()
                .iter()
                .map(|_| vec![0u32; 1 << RAM_ADDR_BITS].into_boxed_slice())
                .collect(),
            ram_rdata: vec![0; g.rams().len()],
            levels,
            fanouts,
            dirty: vec![Vec::new(); depth + 1],
            on_list: vec![false; g.len()],
            counters: KernelCounters::default(),
            g,
        };
        // Consistent starting point, as in the event-driven baseline.
        for (i, n) in m.g.nodes().iter().enumerate() {
            m.vals[i] = match *n {
                Node::Const0 => false,
                Node::Input(_) => false,
                Node::And(a, b) => m.lit(a) && m.lit(b),
                Node::FfOut(ff) => m.ff[ff.0 as usize],
                Node::RamOut { ram, bit } => (m.ram_rdata[ram.0 as usize] >> bit) & 1 == 1,
            };
        }
        m
    }

    fn lit(&self, l: Lit) -> bool {
        self.vals[l.node().0 as usize] ^ l.is_inverted()
    }

    fn touch_source(&mut self, node: u32, v: bool) {
        if self.vals[node as usize] != v {
            self.vals[node as usize] = v;
            for fi in 0..self.fanouts[node as usize].len() {
                let f = self.fanouts[node as usize][fi];
                if !self.on_list[f as usize] {
                    self.on_list[f as usize] = true;
                    self.dirty[self.levels[f as usize] as usize].push(f);
                }
            }
        }
    }

    /// Runs one cycle; returns the primary outputs.
    pub fn cycle(&mut self, inputs: &[bool]) -> Vec<bool> {
        let srcs: Vec<(u32, bool)> = self
            .g
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, (_, id))| (id.0, inputs[i]))
            .chain(
                self.g
                    .ffs()
                    .iter()
                    .enumerate()
                    .map(|(i, f)| (f.out.0, self.ff[i])),
            )
            .chain(self.g.rams().iter().enumerate().flat_map(|(ri, r)| {
                let word = self.ram_rdata[ri];
                r.out
                    .iter()
                    .enumerate()
                    .map(move |(bit, id)| (id.0, (word >> bit) & 1 == 1))
                    .collect::<Vec<_>>()
            }))
            .collect();
        for (n, v) in srcs {
            self.touch_source(n, v);
        }
        // Levelized 0-delay re-simulation: one kernel launch / device sync
        // per active level, irregular fetches per re-evaluated gate.
        for level in 1..self.dirty.len() {
            let work = std::mem::take(&mut self.dirty[level]);
            if work.is_empty() {
                continue;
            }
            self.counters.device_syncs += 1;
            for &node in &work {
                self.on_list[node as usize] = false;
                if let Node::And(a, b) = self.g.node(gem_aig::NodeId(node)) {
                    // 2 operand fetches + truth table + result store.
                    self.counters.global_bytes += 4 * SECTOR;
                    self.counters.global_transactions += 4;
                    self.counters.alu_ops += 1;
                    let nv = self.lit(a) && self.lit(b);
                    if nv != self.vals[node as usize] {
                        self.vals[node as usize] = nv;
                        for fi in 0..self.fanouts[node as usize].len() {
                            let f = self.fanouts[node as usize][fi];
                            if !self.on_list[f as usize] {
                                self.on_list[f as usize] = true;
                                self.dirty[self.levels[f as usize] as usize].push(f);
                            }
                        }
                    }
                }
            }
        }
        let outs: Vec<bool> = self.g.outputs().iter().map(|(_, l)| self.lit(*l)).collect();
        // Sequential update.
        let new_ff: Vec<bool> = self.g.ffs().iter().map(|f| self.lit(f.next)).collect();
        for (ri, r) in self.g.rams().iter().enumerate() {
            let addr_of = |m: &Self, bits: &[Lit; RAM_ADDR_BITS]| -> usize {
                bits.iter()
                    .enumerate()
                    .filter(|(_, &l)| m.lit(l))
                    .map(|(k, _)| 1usize << k)
                    .sum()
            };
            let raddr = addr_of(self, &r.read_addr);
            self.ram_rdata[ri] = self.ram[ri][raddr];
            if self.lit(r.write_en) {
                let waddr = addr_of(self, &r.write_addr);
                let mut w = 0u32;
                for (bit, &l) in r.write_data.iter().enumerate() {
                    if self.lit(l) {
                        w |= 1 << bit;
                    }
                }
                self.ram[ri][waddr] = w;
            }
        }
        self.ff = new_ff;
        self.counters.device_syncs += 1; // cycle boundary
        self.counters.cycles += 1;
        outs
    }

    /// Accumulated counters for the timing model.
    pub fn counters(&self) -> &KernelCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixer() -> Eaig {
        let mut g = Eaig::new();
        let ins: Vec<Lit> = (0..8).map(|i| g.input(format!("i{i}"))).collect();
        let x = g.xor_many(&ins);
        let q = g.ff(false);
        let nx = g.xor(q, x);
        g.set_ff_next(q, nx);
        g.output("o", q);
        g
    }

    #[test]
    fn functional_behaviour_matches_reference_semantics() {
        let g = mixer();
        let mut m = Gl0amModel::new(&g);
        // Manually mirror: q toggles by parity of inputs.
        let mut q = false;
        for c in 0..30 {
            let ins: Vec<bool> = (0..8).map(|i| (c + i) % 3 == 0).collect();
            let outs = m.cycle(&ins);
            assert_eq!(outs[0], q, "cycle {c}");
            let parity = ins.iter().filter(|&&b| b).count() % 2 == 1;
            q ^= parity;
        }
    }

    #[test]
    fn cost_scales_with_activity() {
        let g = mixer();
        let mut quiet = Gl0amModel::new(&g);
        let mut busy = Gl0amModel::new(&g);
        for c in 0..50 {
            quiet.cycle(&[false; 8]);
            let ins: Vec<bool> = (0..8).map(|i| (c + i) % 2 == 0).collect();
            busy.cycle(&ins);
        }
        assert!(busy.counters().global_bytes > quiet.counters().global_bytes * 2);
    }
}
