//! GPU hardware parameter sets.

/// Parameters of a CUDA-capable GPU, the inputs of the timing model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Resident 256-thread blocks per SM under a cooperative launch.
    pub blocks_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Achievable global-memory bandwidth in GB/s (≈85 % of peak).
    pub mem_bandwidth_gbps: f64,
    /// Latency of a device-wide cooperative-groups synchronization in
    /// microseconds.
    pub device_sync_us: f64,
    /// Threads per block the GEM kernel launches.
    pub threads_per_block: u32,
}

impl GpuSpec {
    /// NVIDIA A100-SXM4-40GB (the paper's primary platform).
    pub fn a100() -> Self {
        GpuSpec {
            name: "A100",
            sm_count: 108,
            blocks_per_sm: 8,
            clock_ghz: 1.41,
            mem_bandwidth_gbps: 1300.0, // 1555 peak × ~0.85 achievable
            device_sync_us: 2.5,
            threads_per_block: 256,
        }
    }

    /// NVIDIA GeForce RTX 3090 (the paper's accessible alternative).
    pub fn rtx3090() -> Self {
        GpuSpec {
            name: "RTX 3090",
            sm_count: 82,
            blocks_per_sm: 6,
            clock_ghz: 1.70,
            mem_bandwidth_gbps: 800.0, // 936 peak × ~0.85 achievable
            device_sync_us: 3.0,
            threads_per_block: 256,
        }
    }

    /// Blocks that can be resident simultaneously (cooperative launch).
    pub fn resident_blocks(&self) -> u32 {
        self.sm_count * self.blocks_per_sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let a = GpuSpec::a100();
        let r = GpuSpec::rtx3090();
        assert!(a.mem_bandwidth_gbps > r.mem_bandwidth_gbps);
        assert_eq!(a.resident_blocks(), 864);
        assert!(
            r.resident_blocks() > 216,
            "3090 must fit the paper's 216 blocks"
        );
    }
}
