//! Schedule happens-before certification (the [`ScheduleCert`] artifact).
//!
//! The `messages` check family answers "does every recv have a matching
//! send"; this module goes one step further and *certifies the ordering*:
//! it reconstructs the cross-core message graph from the encoded
//! bitstream alone and proves, for every inter-core read, a
//! happens-before edge from the producing write — either a **stage
//! barrier** (the producer's immediate write ran in a strictly earlier
//! pipeline stage) or the **cycle boundary** (the slot is defined at
//! cycle start: a deferred write committed last cycle, a testbench-poked
//! input, a RAM read-data commit, or a power-on constant). It also
//! proves no two writers race on one slot within a cycle.
//!
//! The proof is summarized into a compact, machine-checkable
//! [`ScheduleCert`]: per-slot producer/consumer facts are folded into a
//! canonical FNV digest, and the certificate is pinned to the exact
//! bitstream bytes it certifies. The `.gemb` package stores the cert
//! next to the bitstream, and the verifier's `schedule` check family
//! (see [`crate::verify`]) recomputes it from scratch and rejects any
//! artifact whose stored cert does not match — so a cert in hand means
//! the race-freedom argument was re-derived, not trusted.

use crate::verify::{VerifyContext, Violation};
use crate::{disassemble_core_exact, Bitstream, DecodedCore};
use std::collections::{HashMap, HashSet};

/// Format version of [`ScheduleCert`] (bumped on any change to the
/// digest's canonical form).
pub const CERT_VERSION: u32 = 1;

/// A machine-checkable summary of the happens-before proof for one
/// compiled bitstream.
///
/// All counts are re-derivable from the bitstream plus device context;
/// `table_digest` folds the canonical per-slot schedule table (producer
/// stage/core, deferred flag, first read stage, reader count, in slot
/// order) and `bitstream_fnv` pins the cert to the exact bytes it
/// certifies. Two certs are interchangeable iff they are `==`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScheduleCert {
    /// Certificate format version ([`CERT_VERSION`]).
    pub version: u32,
    /// Pipeline stages in the certified bitstream.
    pub stages: u32,
    /// Total cores across all stages.
    pub cores: u32,
    /// Size of the device-global signal array.
    pub global_bits: u32,
    /// Total `READ_GLOBAL` entries across all cores.
    pub reads: u32,
    /// Reads whose ordering proof is a stage barrier (immediate
    /// producer in a strictly earlier stage).
    pub barrier_edges: u32,
    /// Reads whose ordering proof is the cycle boundary (deferred
    /// producer, input, RAM read-data, or power-on constant).
    pub boundary_edges: u32,
    /// Immediate (same-cycle) `WRITE_GLOBAL` entries.
    pub immediate_writes: u32,
    /// Deferred (cycle-boundary) `WRITE_GLOBAL` entries.
    pub deferred_writes: u32,
    /// FNV-1a fold of the canonical per-slot schedule table.
    pub table_digest: u64,
    /// FNV-1a fold of the certified bitstream's serialized bytes.
    pub bitstream_fnv: u64,
}

impl ScheduleCert {
    /// One-line human summary (used by CLI tables and logs).
    pub fn summary(&self) -> String {
        format!(
            "v{} {} stage(s) × {} core(s): {} read(s) ordered ({} by stage \
             barrier, {} by cycle boundary), digest {:016x}",
            self.version,
            self.stages,
            self.cores,
            self.reads,
            self.barrier_edges,
            self.boundary_edges,
            self.table_digest
        )
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01B3;

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// FNV-1a over a byte slice from the standard offset basis.
pub(crate) fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, bytes);
    h
}

/// The happens-before facts extracted by one analysis walk, shared
/// between [`certify_schedule`] and the verifier's `schedule` check.
pub(crate) struct ScheduleAnalysis {
    pub reads: u32,
    pub barrier_edges: u32,
    pub boundary_edges: u32,
    pub immediate_writes: u32,
    pub deferred_writes: u32,
    pub table_digest: u64,
}

/// Walks the decoded cores, emits every happens-before violation into
/// `v`, and returns the analysis summary. The caller stamps the `check`
/// field of the violations.
pub(crate) fn analyze_schedule(
    decoded: &[Vec<Option<DecodedCore>>],
    ctx: &VerifyContext<'_>,
    v: &mut Vec<Violation>,
) -> ScheduleAnalysis {
    // Producer table: every writer of every global slot.
    let mut writers: HashMap<u32, Vec<(usize, usize, bool)>> = HashMap::new();
    let mut immediate_writes = 0u32;
    let mut deferred_writes = 0u32;
    for (si, stage) in decoded.iter().enumerate() {
        for (ci, dec) in stage.iter().enumerate() {
            let Some(dec) = dec else { continue };
            for w in &dec.writes {
                writers
                    .entry(w.global)
                    .or_default()
                    .push((si, ci, w.deferred));
                if w.deferred {
                    deferred_writes += 1;
                } else {
                    immediate_writes += 1;
                }
            }
        }
    }

    // No two writers may race on one slot: within a cycle there is no
    // ordering between two sends to the same global, whatever their
    // stages or deferred flags.
    for (&slot, ws) in &writers {
        if ws.len() > 1 {
            let mut sorted = ws.clone();
            sorted.sort_unstable();
            let (s0, c0, _) = sorted[0];
            let (s1, c1, _) = sorted[1];
            v.push(Violation {
                check: "",
                location: Some((s0, c0)),
                message: format!(
                    "global {slot} has {} racing writers within one cycle \
                     (stage {s0} core {c0} and stage {s1} core {c1}, no \
                     happens-before edge between sends)",
                    ws.len()
                ),
            });
        }
    }

    // Slots proven defined at cycle start, and the earliest stage at
    // which an immediate write defines each slot mid-cycle.
    let rdata_slots: HashSet<u32> = ctx
        .rams
        .iter()
        .flat_map(|r| r.rdata.iter().copied())
        .collect();
    let mut cycle_start: HashSet<u32> = ctx.input_slots.iter().copied().collect();
    cycle_start.extend(rdata_slots.iter().copied());
    let mut immediate_stage: HashMap<u32, usize> = HashMap::new();
    for (&slot, ws) in &writers {
        for &(si, _, deferred) in ws {
            if deferred {
                cycle_start.insert(slot);
            } else {
                let e = immediate_stage.entry(slot).or_insert(si);
                *e = (*e).min(si);
            }
        }
    }
    // A power-on constant proves the boundary edge at cycle 0 only; from
    // cycle 1 on the slot holds whatever was last written. An
    // initial-one slot whose only writers are immediate therefore has no
    // steady-state boundary edge — early-stage readers would see the
    // previous cycle's mid-cycle value, which is exactly the
    // message-before-producer race.
    for &slot in &ctx.initial_ones {
        let immediate_only = writers
            .get(&slot)
            .is_some_and(|ws| ws.iter().all(|&(_, _, deferred)| !deferred));
        if !immediate_only {
            cycle_start.insert(slot);
        }
    }

    // Every read needs a happens-before edge from its producer.
    let mut reads = 0u32;
    let mut barrier_edges = 0u32;
    let mut boundary_edges = 0u32;
    let mut first_read_stage: HashMap<u32, u32> = HashMap::new();
    let mut reader_count: HashMap<u32, u32> = HashMap::new();
    for (si, stage) in decoded.iter().enumerate() {
        for (ci, dec) in stage.iter().enumerate() {
            let Some(dec) = dec else { continue };
            for r in &dec.reads {
                reads += 1;
                let e = first_read_stage.entry(r.global).or_insert(si as u32);
                *e = (*e).min(si as u32);
                *reader_count.entry(r.global).or_insert(0) += 1;
                if immediate_stage.get(&r.global).is_some_and(|&s| s < si) {
                    barrier_edges += 1;
                } else if cycle_start.contains(&r.global) {
                    boundary_edges += 1;
                } else {
                    let why = match (writers.get(&r.global), immediate_stage.get(&r.global)) {
                        (Some(_), Some(&ws)) => format!(
                            "its only producer is an immediate write at stage \
                             {ws}, not before stage {si} (message would arrive \
                             before the producer runs)"
                        ),
                        (Some(_), None) => "its producers cannot be ordered".to_string(),
                        (None, _) => "no core ever writes it".to_string(),
                    };
                    v.push(Violation {
                        check: "",
                        location: Some((si, ci)),
                        message: format!(
                            "read of global {} at stage {si} has no \
                             happens-before edge from a producing write: {why}",
                            r.global
                        ),
                    });
                }
            }
        }
    }

    // Canonical per-slot table digest: slot order, producer coordinates
    // sorted, then consumer facts. Any schedule change perturbs it.
    let mut slots: Vec<u32> = writers.keys().copied().collect();
    slots.sort_unstable();
    let mut h = FNV_OFFSET;
    for slot in slots {
        fnv1a(&mut h, &slot.to_le_bytes());
        let mut ws = writers[&slot].clone();
        ws.sort_unstable();
        for (si, ci, deferred) in ws {
            fnv1a(&mut h, &(si as u32).to_le_bytes());
            fnv1a(&mut h, &(ci as u32).to_le_bytes());
            fnv1a(&mut h, &[u8::from(deferred)]);
        }
        let fr = first_read_stage.get(&slot).copied().unwrap_or(u32::MAX);
        fnv1a(&mut h, &fr.to_le_bytes());
        let rc = reader_count.get(&slot).copied().unwrap_or(0);
        fnv1a(&mut h, &rc.to_le_bytes());
    }

    ScheduleAnalysis {
        reads,
        barrier_edges,
        boundary_edges,
        immediate_writes,
        deferred_writes,
        table_digest: h,
    }
}

/// Builds the certificate from an analysis and the bitstream it covers.
pub(crate) fn cert_from_analysis(bs: &Bitstream, a: &ScheduleAnalysis) -> ScheduleCert {
    ScheduleCert {
        version: CERT_VERSION,
        stages: bs.stages.len() as u32,
        cores: bs.total_cores() as u32,
        global_bits: bs.global_bits,
        reads: a.reads,
        barrier_edges: a.barrier_edges,
        boundary_edges: a.boundary_edges,
        immediate_writes: a.immediate_writes,
        deferred_writes: a.deferred_writes,
        table_digest: a.table_digest,
        bitstream_fnv: fnv1a_bytes(&bs.to_bytes()),
    }
}

/// Statically proves the compiled schedule race-free and returns its
/// certificate, or the happens-before violations that block one.
///
/// A certificate exists iff every core decodes, no two writers race on
/// one global slot, and every read is ordered after its producing write
/// by a stage barrier or the cycle boundary. The returned violations are
/// stamped with the `schedule` check name so they drop straight into a
/// [`crate::VerifyReport`]-style pipeline.
pub fn certify_schedule(
    bs: &Bitstream,
    ctx: &VerifyContext<'_>,
) -> Result<ScheduleCert, Vec<Violation>> {
    let mut v = Vec::new();
    let decoded: Vec<Vec<Option<DecodedCore>>> = bs
        .stages
        .iter()
        .enumerate()
        .map(|(si, stage)| {
            stage
                .iter()
                .enumerate()
                .map(|(ci, bytes)| match disassemble_core_exact(bytes) {
                    Ok(dec) => Some(dec),
                    Err(e) => {
                        v.push(Violation {
                            check: "",
                            location: Some((si, ci)),
                            message: format!("cannot certify an undecodable core: {e}"),
                        });
                        None
                    }
                })
                .collect()
        })
        .collect();
    let analysis = analyze_schedule(&decoded, ctx, &mut v);
    if v.is_empty() {
        Ok(cert_from_analysis(bs, &analysis))
    } else {
        for viol in &mut v {
            viol.check = "schedule";
        }
        Err(v)
    }
}
