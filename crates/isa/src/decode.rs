//! Bitstream disassembly (the loader half of the virtual machine).

use crate::{init_bits, io_bits, io_entries, perm_words, wb_entries, wide_bits};
use crate::{ReadEntry, WriteEntry, WriteSrc};
use gem_place::{BoomerangLayer, PermSource};
use std::fmt;

/// Errors from [`disassemble_core`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The program is shorter than its headers claim.
    Truncated,
    /// Bad magic word at the start of `INIT`.
    BadMagic(u32),
    /// A field holds an impossible value; the string names it.
    BadField(String),
    /// The buffer holds this many bytes beyond the encoded program
    /// (strict decoding only; see [`disassemble_core_exact`]).
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated core program"),
            DecodeError::BadMagic(m) => write!(f, "bad INIT magic {m:#010x}"),
            DecodeError::BadField(s) => write!(f, "bad field: {s}"),
            DecodeError::TrailingBytes(n) => {
                write!(f, "{n} trailing byte(s) after the core program")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A decoded core program, structurally equivalent to the
/// [`gem_place::CoreProgram`] it was assembled from (minus node identities,
/// which live in the compiler's binding tables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedCore {
    /// Core width.
    pub width: u32,
    /// State bits used.
    pub state_size: u32,
    /// Global loads.
    pub reads: Vec<ReadEntry>,
    /// Boomerang layers.
    pub layers: Vec<BoomerangLayer>,
    /// Global stores.
    pub writes: Vec<WriteEntry>,
}

struct BitReader<'a> {
    bytes: &'a [u8],
    bit: usize,
}

impl<'a> BitReader<'a> {
    fn read_bit(&mut self) -> Result<bool, DecodeError> {
        let byte = self.bit / 8;
        if byte >= self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let v = (self.bytes[byte] >> (self.bit % 8)) & 1 == 1;
        self.bit += 1;
        Ok(v)
    }

    fn read_bits(&mut self, n: usize) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        for i in 0..n {
            if self.read_bit()? {
                v |= 1 << i;
            }
        }
        Ok(v)
    }

    fn seek(&mut self, bit: usize) -> Result<(), DecodeError> {
        if bit > self.bytes.len() * 8 {
            return Err(DecodeError::Truncated);
        }
        self.bit = bit;
        Ok(())
    }
}

/// Reconstructs one boomerang layer from its `PERMUTE`/`FOLD`/`WRITEBACK`
/// words, starting at word-aligned bit `cursor`. Returns the layer and
/// the cursor one past its last word.
///
/// This is the *only* layer-reconstruction path in the workspace: the
/// decoder (and through it the static verifier's round-trip check) both
/// go through it, so the two can never disagree about the word layout.
fn read_layer(
    r: &mut BitReader<'_>,
    mut cursor: usize,
    width: u32,
    folds: usize,
) -> Result<(BoomerangLayer, usize), DecodeError> {
    let mut layer = BoomerangLayer::new(width);
    let pw = perm_words(width);
    let codes_per_word = (width as usize).div_ceil(pw);
    let mut idx = 0usize;
    for _ in 0..pw {
        let word_base = cursor;
        for _ in 0..codes_per_word.min(width as usize - idx) {
            let code = r.read_bits(16)? as u16;
            layer.perm[idx] = if code & 0x8000 != 0 {
                PermSource::ConstFalse
            } else {
                PermSource::State(code as u32)
            };
            idx += 1;
        }
        cursor = word_base + wide_bits(width);
        r.seek(cursor)?;
    }
    // FOLD word.
    let fold_base = cursor;
    for k in 0..folds {
        let slots = (width >> (k + 1)) as usize;
        for j in 0..slots {
            layer.folds[k].xa[j] = r.read_bit()?;
        }
        for j in 0..slots {
            layer.folds[k].xb[j] = r.read_bit()?;
        }
        for j in 0..slots {
            layer.folds[k].ob[j] = r.read_bit()?;
        }
    }
    r.seek(fold_base + wide_bits(width) - 32)?;
    let wb_words = r.read_bits(32)? as usize;
    cursor = fold_base + wide_bits(width);
    r.seek(cursor)?;
    for _ in 0..wb_words {
        let word_base = cursor;
        let count = r.read_bits(32)? as usize;
        if count > wb_entries(width).max(1) {
            return Err(DecodeError::BadField(format!("wb count {count}")));
        }
        for _ in 0..count {
            let level = r.read_bits(5)? as usize;
            let slot = r.read_bits(14)? as usize;
            let addr = r.read_bits(13)? as u32;
            if level == 0 || level > folds || slot >= (width as usize >> level) {
                return Err(DecodeError::BadField(format!(
                    "writeback level {level} slot {slot}"
                )));
            }
            layer.writeback[level - 1][slot] = Some(addr);
        }
        cursor = word_base + wide_bits(width);
        r.seek(cursor)?;
    }
    Ok((layer, cursor))
}

/// Disassembles one core program produced by [`crate::assemble_core`].
///
/// Trailing bytes after the encoded program are tolerated (the container
/// stores exact lengths, but a raw byte slice may be padded); use
/// [`disassemble_core_exact`] to reject them.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input.
pub fn disassemble_core(bytes: &[u8]) -> Result<DecodedCore, DecodeError> {
    disassemble_inner(bytes).map(|(dec, _)| dec)
}

/// Like [`disassemble_core`], but additionally requires the buffer to end
/// exactly where the encoded program does.
///
/// # Errors
///
/// Returns [`DecodeError::TrailingBytes`] when the buffer is longer than
/// the program, in addition to the lenient decoder's errors.
pub fn disassemble_core_exact(bytes: &[u8]) -> Result<DecodedCore, DecodeError> {
    let (dec, bits) = disassemble_inner(bytes)?;
    let consumed = bits.div_ceil(8);
    if consumed != bytes.len() {
        return Err(DecodeError::TrailingBytes(bytes.len() - consumed));
    }
    Ok(dec)
}

fn disassemble_inner(bytes: &[u8]) -> Result<(DecodedCore, usize), DecodeError> {
    let mut r = BitReader { bytes, bit: 0 };
    let magic = r.read_bits(32)? as u32;
    if magic != u32::from_le_bytes(*b"GEMB") {
        return Err(DecodeError::BadMagic(magic));
    }
    let width = r.read_bits(32)? as u32;
    if !width.is_power_of_two() || width < 2 {
        return Err(DecodeError::BadField(format!("width {width}")));
    }
    let state_size = r.read_bits(32)? as u32;
    let num_layers = r.read_bits(32)? as usize;
    let n_reads = r.read_bits(32)? as usize;
    let n_writes = r.read_bits(32)? as usize;
    let folds = r.read_bits(32)? as usize;
    if folds != width.trailing_zeros() as usize {
        return Err(DecodeError::BadField(format!("folds {folds}")));
    }
    let mut cursor = init_bits(width);
    r.seek(cursor)?;

    // Reads.
    let per_word = io_entries(width).max(1);
    let mut reads = Vec::with_capacity(n_reads);
    let read_words = n_reads.div_ceil(per_word);
    for wi in 0..read_words {
        let in_this = (n_reads - wi * per_word).min(per_word);
        for _ in 0..in_this {
            let global = r.read_bits(32)? as u32;
            let state = r.read_bits(16)? as u16;
            let _pad = r.read_bits(16)?;
            reads.push(ReadEntry { global, state });
        }
        cursor += io_bits(width);
        r.seek(cursor)?;
    }

    // Layers.
    let mut layers = Vec::with_capacity(num_layers);
    for _ in 0..num_layers {
        let (layer, next) = read_layer(&mut r, cursor, width, folds)?;
        cursor = next;
        layers.push(layer);
    }

    // Writes.
    let mut writes = Vec::with_capacity(n_writes);
    let write_words = n_writes.div_ceil(per_word);
    for wi in 0..write_words {
        let in_this = (n_writes - wi * per_word).min(per_word);
        let word_base = cursor;
        for _ in 0..in_this {
            let global = r.read_bits(32)? as u32;
            let src_raw = r.read_bits(16)? as u16;
            let flags = r.read_bits(16)? as u16;
            let src = if src_raw & 0x8000 != 0 {
                WriteSrc::Const(src_raw & 1 == 1)
            } else {
                WriteSrc::State {
                    addr: src_raw & 0x1FFF,
                    invert: src_raw & (1 << 14) != 0,
                }
            };
            writes.push(WriteEntry {
                global,
                src,
                deferred: flags & 1 != 0,
            });
        }
        cursor = word_base + io_bits(width);
        r.seek(cursor)?;
    }

    Ok((
        DecodedCore {
            width,
            state_size,
            reads,
            layers,
            writes,
        },
        cursor,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble_core;
    use gem_place::{CoreProgram, OutputSource};

    fn sample_program(width: u32) -> CoreProgram {
        let folds = width.trailing_zeros() as usize;
        let mut layer = BoomerangLayer::new(width);
        layer.perm[0] = PermSource::State(3);
        layer.perm[1] = PermSource::State(1);
        layer.folds[0].xa[0] = true;
        layer.folds[0].ob[0] = true;
        if folds > 1 {
            layer.folds[1].xb[0] = true;
        }
        layer.writeback[0][0] = Some(5);
        let mut layer2 = BoomerangLayer::new(width);
        layer2.perm[2] = PermSource::State(5);
        layer2.writeback[folds - 1][0] = Some(7);
        CoreProgram {
            width,
            state_size: 9,
            inputs: vec![(gem_aig::NodeId(1), 3), (gem_aig::NodeId(2), 1)],
            layers: vec![layer, layer2],
            outputs: vec![OutputSource::State {
                addr: 7,
                invert: true,
            }],
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        for width in [16u32, 64, 8192] {
            let prog = sample_program(width);
            let reads = vec![
                ReadEntry {
                    global: 10,
                    state: 3,
                },
                ReadEntry {
                    global: 11,
                    state: 1,
                },
            ];
            let writes = vec![WriteEntry {
                global: 42,
                src: WriteSrc::State {
                    addr: 7,
                    invert: true,
                },
                deferred: true,
            }];
            let bytes = assemble_core(&prog, &reads, &writes);
            let dec = disassemble_core(&bytes).expect("decodes");
            assert_eq!(dec.width, width);
            assert_eq!(dec.state_size, 9);
            assert_eq!(dec.reads, reads);
            assert_eq!(dec.writes, writes);
            assert_eq!(dec.layers, prog.layers, "width {width}");
        }
    }

    #[test]
    fn word_sizes_match_the_paper_at_full_width() {
        // Fig 7: 8192 / 16384 / 32768-bit instruction variants.
        assert_eq!(crate::init_bits(8192), 8192);
        assert_eq!(crate::io_bits(8192), 16384);
        assert_eq!(crate::wide_bits(8192), 32768);
        assert_eq!(crate::io_entries(8192), 256);
        assert_eq!(crate::perm_words(8192), 4);
    }

    #[test]
    fn program_size_formula() {
        let width = 64u32;
        let prog = sample_program(width);
        let bytes = assemble_core(&prog, &[], &[]);
        // INIT + 2 layers × (4 perm words + 1 fold word + 1 wb word).
        let expect_bits = crate::init_bits(width) + 2 * (4 + 1 + 1) * crate::wide_bits(width);
        assert_eq!(bytes.len() * 8, expect_bits);
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = vec![0u8; 1024];
        assert!(matches!(
            disassemble_core(&bytes),
            Err(DecodeError::BadMagic(0))
        ));
    }

    #[test]
    fn truncation_detected() {
        let prog = sample_program(64);
        let bytes = assemble_core(&prog, &[], &[]);
        assert!(matches!(
            disassemble_core(&bytes[..bytes.len() / 2]),
            Err(DecodeError::Truncated)
        ));
    }

    #[test]
    fn exact_decode_rejects_trailing_bytes() {
        let prog = sample_program(64);
        let mut bytes = assemble_core(&prog, &[], &[]);
        assert!(disassemble_core_exact(&bytes).is_ok());
        bytes.extend_from_slice(&[0u8; 3]);
        assert!(disassemble_core(&bytes).is_ok(), "lenient decode tolerates");
        assert_eq!(
            disassemble_core_exact(&bytes),
            Err(DecodeError::TrailingBytes(3))
        );
    }

    /// Pins the decoder's cursor walk (through the shared `read_layer`
    /// helper) against the closed-form size accounting in
    /// [`crate::core_size_bits`]: if either drifts, the verifier's budget
    /// check and the decoder would disagree about where words end.
    #[test]
    fn decoder_and_size_accounting_agree() {
        for width in [16u32, 64, 256, 8192] {
            let prog = sample_program(width);
            let reads: Vec<ReadEntry> = (0..5)
                .map(|i| ReadEntry {
                    global: i,
                    state: i as u16,
                })
                .collect();
            let writes = vec![WriteEntry {
                global: 3,
                src: WriteSrc::Const(true),
                deferred: false,
            }];
            let bytes = assemble_core(&prog, &reads, &writes);
            let dec = disassemble_core_exact(&bytes).expect("decodes with no slack");
            let wb_counts: Vec<usize> = dec
                .layers
                .iter()
                .map(|l| {
                    l.writeback
                        .iter()
                        .map(|s| s.iter().filter(|a| a.is_some()).count())
                        .sum()
                })
                .collect();
            let expect = crate::core_size_bits(width, reads.len(), writes.len(), &wb_counts);
            assert_eq!(bytes.len() * 8, expect, "width {width}");
        }
    }

    /// Decode → canonical re-encode must reproduce the encoder's bytes
    /// bit-for-bit (the verifier's round-trip invariant).
    #[test]
    fn reencode_of_decoded_core_is_identical() {
        for width in [16u32, 64, 256] {
            let prog = sample_program(width);
            let reads = vec![ReadEntry {
                global: 7,
                state: 3,
            }];
            let writes = vec![WriteEntry {
                global: 9,
                src: WriteSrc::State {
                    addr: 7,
                    invert: false,
                },
                deferred: true,
            }];
            let bytes = assemble_core(&prog, &reads, &writes);
            let dec = disassemble_core(&bytes).expect("decodes");
            assert_eq!(crate::assemble_decoded(&dec), bytes, "width {width}");
        }
    }

    #[test]
    fn container_round_trip() {
        let prog = sample_program(16);
        let core = assemble_core(&prog, &[], &[]);
        let bs = crate::Bitstream {
            width: 16,
            global_bits: 99,
            stages: vec![vec![core.clone(), core.clone()], vec![core]],
        };
        let bytes = bs.to_bytes();
        let back = crate::Bitstream::from_bytes(&bytes).expect("parses");
        assert_eq!(back, bs);
        assert_eq!(back.total_cores(), 3);
        assert!(back.total_bytes() > 0);
        assert!(crate::Bitstream::from_bytes(&bytes[..5]).is_err());
    }
}
