//! The GEM virtual-VLIW instruction set and bitstream format (paper
//! §III-E, Fig 7).
//!
//! A compiled design is a *bitstream*: one program per virtual Boolean
//! processor core, organized by pipeline stage. Each core program is a
//! sequence of very long instruction words sized for a 256-thread GPU
//! block to load with fully-coalesced reads:
//!
//! | word            | bits (W = 8192)  | purpose |
//! |-----------------|------------------|---------|
//! | `INIT`          | W     = 8192     | layer/read/write counts, state size |
//! | `READ_GLOBAL`   | 2·W   = 16384    | (global bit → state bit) loads, once per cycle |
//! | `PERMUTE` ×4    | 4·W   = 32768    | 16-bit source codes for the W row bits |
//! | `FOLD`          | 4·W   = 32768    | xa/xb/ob constants for all 13 fold levels |
//! | `WRITEBACK` ×n  | 4·W   = 32768    | sparse (level, slot → state bit) stores |
//! | `WRITE_GLOBAL`  | 2·W   = 16384    | (state bit → global bit) publishes |
//!
//! An 8192-bit word is one coalesced 32-bit read per thread; the 16384-
//! and 32768-bit variants use 64- and 128-bit reads, exactly as in the
//! paper. The word sizes scale with the core width `W` so the format (and
//! the interpreter in `gem-vgpu`) also works at the small widths used in
//! tests; at the paper's W = 8192 the three sizes match Fig 7.
//!
//! The paper could not include full field layouts "due to page limit", so
//! the packing here is this reproduction's own, with instruction counts
//! and widths chosen to match the published word sizes (bitstream sizes in
//! Table I are therefore comparable).

#![deny(unsafe_code)]

pub mod decode;
pub mod encode;
pub mod mutate;
pub mod schedule;
pub mod verify;

pub use decode::{disassemble_core, disassemble_core_exact, DecodeError, DecodedCore};
pub use encode::{assemble_core, assemble_decoded, Bitstream, ReadEntry, WriteEntry, WriteSrc};
pub use schedule::{certify_schedule, ScheduleCert, CERT_VERSION};
pub use verify::{verify_bitstream, VerifyContext, VerifyReport};

/// Bits in an `INIT` word for core width `w` (floored so headers fit at
/// the tiny widths used in tests; equals `w` from `w = 256` up).
pub const fn init_bits(w: u32) -> usize {
    if (w as usize) < 256 {
        256
    } else {
        w as usize
    }
}

/// Bits in a `READ_GLOBAL`/`WRITE_GLOBAL` word (floored to one entry).
pub const fn io_bits(w: u32) -> usize {
    if 2 * (w as usize) < 64 {
        64
    } else {
        2 * w as usize
    }
}

/// Entries per `READ_GLOBAL`/`WRITE_GLOBAL` word (64 bits per entry).
pub const fn io_entries(w: u32) -> usize {
    io_bits(w) / 64
}

/// Bits in a `PERMUTE`/`FOLD`/`WRITEBACK` word (floored so the fold
/// constants plus their header fit at tiny test widths).
pub const fn wide_bits(w: u32) -> usize {
    if 4 * (w as usize) < 128 {
        128
    } else {
        4 * w as usize
    }
}

/// Number of `PERMUTE` words per layer (16 bits per row source).
pub const fn perm_words(w: u32) -> usize {
    (w as usize * 16).div_ceil(wide_bits(w))
}

/// Write-back entries per `WRITEBACK` word (32 bits per entry, one u32
/// count header).
pub const fn wb_entries(w: u32) -> usize {
    wide_bits(w) / 32 - 1
}

/// Exact encoded size, in bits, of a core program with the given
/// instruction counts (`layer_wb_entries[i]` = populated write-back
/// entries of layer `i`).
///
/// This is the single size-accounting authority shared by the encoder's
/// word emission, the decoder's cursor walk, and the static verifier's
/// budget check; `decode::tests::decoder_and_size_accounting_agree` pins
/// the three together.
pub fn core_size_bits(
    w: u32,
    n_reads: usize,
    n_writes: usize,
    layer_wb_entries: &[usize],
) -> usize {
    let per_io_word = io_entries(w).max(1);
    let mut bits = init_bits(w);
    bits += n_reads.div_ceil(per_io_word) * io_bits(w);
    for &wb in layer_wb_entries {
        let wb_words = wb.div_ceil(wb_entries(w).max(1));
        bits += (perm_words(w) + 1 + wb_words) * wide_bits(w);
    }
    bits += n_writes.div_ceil(per_io_word) * io_bits(w);
    bits
}
