//! Static bitstream verifier: the compile flow's trust anchor.
//!
//! A compiled [`Bitstream`] encodes the whole E-AIG schedule — boomerang
//! layer order, permutation legality, cross-core message timing — and a
//! single mis-encoded word silently corrupts every simulation run (and,
//! through the server's compile cache, every *session*). Following the
//! static-legality discipline of bulk-synchronous emulator compilers,
//! this module re-derives the invariant set from the bitstream alone and
//! checks it against the device/placement metadata, instead of trusting
//! the encoder:
//!
//! | check       | invariant |
//! |-------------|-----------|
//! | `roundtrip` | decode → canonical re-encode reproduces every core bit-for-bit; the container survives serialization |
//! | `layers`    | layers are level-monotone: no state bit is gathered before a `READ_GLOBAL` or an earlier layer's write-back defines it, and no layer both gathers and writes the same bit |
//! | `messages`  | every cross-core read has exactly one matching send scheduled before its first use (immediate sends strictly earlier in the stage pipeline, deferred sends by the previous cycle) and within inbox capacity |
//! | `bounds`    | state addresses stay inside `state_size`, globals inside the signal array, RAM bindings match the fixed 8192×32 geometry |
//! | `budget`    | per-core instruction counts account for every encoded byte; inbox/outbox budgets hold |
//! | `merge`     | the encoded programs are structurally consistent with the placement/merge metadata (when provided) |
//! | `schedule`  | happens-before certification: every read is ordered after its producing write by a stage barrier or the cycle boundary, no two writers race on a slot, and the stored [`ScheduleCert`] (when provided) matches a from-scratch recomputation |
//!
//! The verifier never panics on hostile input: anything the decoder
//! rejects becomes a `roundtrip` violation and the remaining checks skip
//! that core. Its own health is enforced by the mutation self-test
//! harness (`tests/mutation_kill.rs`), which corrupts valid bitstreams in
//! every class [`crate::mutate::MutationClass`] knows and asserts each
//! mutant is killed.

use crate::schedule::{self, ScheduleCert};
use crate::{assemble_decoded, core_size_bits, disassemble_core_exact, Bitstream, DecodedCore};
use crate::{WriteEntry, WriteSrc};
use gem_aig::{RAM_ADDR_BITS, RAM_DATA_BITS};
use gem_place::{CoreProgram, OutputSource, PermSource};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Instant;

/// Global-slot binding of one RAM block. Mirrors the virtual GPU's
/// `RamBinding` without depending on the machine crate (the ISA layer
/// sits below it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RamSlots {
    /// Read-address operand slots, LSB first (`RAM_ADDR_BITS` of them).
    pub raddr: Vec<u32>,
    /// Write-address operand slots.
    pub waddr: Vec<u32>,
    /// Write-data operand slots (`RAM_DATA_BITS` of them).
    pub wdata: Vec<u32>,
    /// Write-enable operand slot.
    pub we: u32,
    /// Read-data result slots (device-written at the cycle boundary).
    pub rdata: Vec<u32>,
}

impl RamSlots {
    /// All operand slots a core must publish with an *immediate* write.
    pub fn operand_slots(&self) -> impl Iterator<Item = u32> + '_ {
        self.raddr
            .iter()
            .chain(self.waddr.iter())
            .chain(self.wdata.iter())
            .copied()
            .chain(std::iter::once(self.we))
    }
}

/// Everything the verifier knows about the device besides the bitstream
/// itself. All of it comes straight out of the compiler's outputs (see
/// `gem_core::verify` for the adapter).
#[derive(Debug, Clone, Default)]
pub struct VerifyContext<'a> {
    /// Size of the device-global signal array.
    pub global_bits: u32,
    /// RAM block bindings (fixed 8192×32 geometry).
    pub rams: Vec<RamSlots>,
    /// Global slots holding 1 at cycle 0 (FF init values).
    pub initial_ones: Vec<u32>,
    /// Testbench-poked input slots (defined at every cycle start).
    pub input_slots: Vec<u32>,
    /// Primary-output slots; each needs exactly one deferred publisher.
    pub output_slots: Vec<u32>,
    /// Placement metadata, stage-major, matching the bitstream shape.
    /// `None` skips the `merge` consistency check (e.g. verifying a
    /// `.gemb` package, which does not carry programs).
    pub programs: Option<&'a [Vec<CoreProgram>]>,
    /// The schedule certificate stored with the artifact, if any. The
    /// `schedule` check always re-derives the happens-before proof from
    /// the bitstream; when a cert is provided it must additionally match
    /// the recomputation bit-for-bit.
    pub schedule_cert: Option<&'a ScheduleCert>,
}

/// One invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The check that found it (one of [`CHECK_NAMES`]).
    pub check: &'static str,
    /// `(stage, core)` when the violation is core-scoped.
    pub location: Option<(usize, usize)>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.location {
            Some((s, c)) => write!(f, "[{}] stage {s} core {c}: {}", self.check, self.message),
            None => write!(f, "[{}] {}", self.check, self.message),
        }
    }
}

/// Outcome of one check family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// Check name (stable; part of the metrics format).
    pub name: &'static str,
    /// Violations found.
    pub violations: usize,
    /// Wall time spent, nanoseconds.
    pub wall_ns: u64,
}

/// The complete verification outcome.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Cores examined.
    pub cores: usize,
    /// Per-check results, in [`CHECK_NAMES`] order.
    pub checks: Vec<CheckResult>,
    /// Every violation found, in check order.
    pub violations: Vec<Violation>,
}

/// The check families, in execution order.
pub const CHECK_NAMES: [&str; 7] = [
    "roundtrip",
    "layers",
    "messages",
    "bounds",
    "budget",
    "merge",
    "schedule",
];

impl VerifyReport {
    /// True when no check found a violation.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total violations across all checks.
    pub fn total_violations(&self) -> usize {
        self.violations.len()
    }

    /// Looks up one check's result by name.
    pub fn check(&self, name: &str) -> Option<&CheckResult> {
        self.checks.iter().find(|c| c.name == name)
    }

    /// One-line outcome suitable for an error message (first violations
    /// inline, the rest counted).
    pub fn summary(&self) -> String {
        if self.passed() {
            return format!("{} core(s) verified, all checks passed", self.cores);
        }
        let shown: Vec<String> = self
            .violations
            .iter()
            .take(3)
            .map(|v| v.to_string())
            .collect();
        let more = self.violations.len().saturating_sub(3);
        let tail = if more > 0 {
            format!("; +{more} more")
        } else {
            String::new()
        };
        format!(
            "{} violation(s): {}{tail}",
            self.violations.len(),
            shown.join("; ")
        )
    }
}

/// Runs the full static check suite over a bitstream.
///
/// Never panics on malformed input: undecodable cores surface as
/// `roundtrip` violations and are skipped by the semantic checks.
pub fn verify_bitstream(bs: &Bitstream, ctx: &VerifyContext<'_>) -> VerifyReport {
    let mut report = VerifyReport {
        cores: bs.total_cores(),
        ..Default::default()
    };

    let run =
        |report: &mut VerifyReport, name: &'static str, f: &mut dyn FnMut(&mut Vec<Violation>)| {
            let start = Instant::now();
            let mut found = Vec::new();
            f(&mut found);
            for v in &mut found {
                v.check = name;
            }
            report.checks.push(CheckResult {
                name,
                violations: found.len(),
                wall_ns: start.elapsed().as_nanos() as u64,
            });
            report.violations.extend(found);
        };

    let mut decoded: Vec<Vec<Option<DecodedCore>>> = bs
        .stages
        .iter()
        .map(|s| s.iter().map(|_| None).collect())
        .collect();

    run(&mut report, "roundtrip", &mut |v| {
        check_roundtrip(bs, &mut decoded, v)
    });
    run(&mut report, "layers", &mut |v| check_layers(&decoded, v));
    run(&mut report, "messages", &mut |v| {
        check_messages(&decoded, ctx, v)
    });
    run(&mut report, "bounds", &mut |v| {
        check_bounds(bs, &decoded, ctx, v)
    });
    run(&mut report, "budget", &mut |v| {
        check_budget(bs, &decoded, ctx, v)
    });
    run(&mut report, "merge", &mut |v| check_merge(&decoded, ctx, v));
    run(&mut report, "schedule", &mut |v| {
        check_schedule(bs, &decoded, ctx, v)
    });
    report
}

fn viol(v: &mut Vec<Violation>, location: Option<(usize, usize)>, message: String) {
    v.push(Violation {
        check: "",
        location,
        message,
    });
}

/// Iterate decoded cores, skipping the ones the round-trip check already
/// rejected.
fn cores(
    decoded: &[Vec<Option<DecodedCore>>],
) -> impl Iterator<Item = (usize, usize, &DecodedCore)> {
    decoded.iter().enumerate().flat_map(|(si, stage)| {
        stage
            .iter()
            .enumerate()
            .filter_map(move |(ci, d)| d.as_ref().map(|d| (si, ci, d)))
    })
}

// ----------------------------------------------------------- roundtrip --

fn check_roundtrip(
    bs: &Bitstream,
    decoded: &mut [Vec<Option<DecodedCore>>],
    v: &mut Vec<Violation>,
) {
    for (si, stage) in bs.stages.iter().enumerate() {
        for (ci, bytes) in stage.iter().enumerate() {
            match disassemble_core_exact(bytes) {
                Ok(dec) => {
                    let re = assemble_decoded(&dec);
                    if re != *bytes {
                        viol(
                            v,
                            Some((si, ci)),
                            "re-encode differs from stored bytes (non-canonical or \
                             corrupt encoding)"
                                .into(),
                        );
                    }
                    decoded[si][ci] = Some(dec);
                }
                Err(e) => viol(v, Some((si, ci)), format!("decode failed: {e}")),
            }
        }
    }
    match Bitstream::from_bytes(&bs.to_bytes()) {
        Ok(back) if back == *bs => {}
        Ok(_) => viol(v, None, "container round trip altered the bitstream".into()),
        Err(e) => viol(v, None, format!("container rejected its own bytes: {e}")),
    }
}

// -------------------------------------------------------------- layers --

fn check_layers(decoded: &[Vec<Option<DecodedCore>>], v: &mut Vec<Violation>) {
    for (si, ci, dec) in cores(decoded) {
        let loc = Some((si, ci));
        let folds = dec.width.trailing_zeros() as usize;
        // A state bit is *defined* once a READ_GLOBAL loads it or a
        // preceding layer writes it back. The placer recycles addresses
        // across layers, so the defined set only ever grows — an address
        // freed and re-allocated is written again before any later read.
        let mut defined: HashSet<u32> = dec.reads.iter().map(|r| u32::from(r.state)).collect();
        for (li, layer) in dec.layers.iter().enumerate() {
            if layer.width != dec.width || layer.fold_levels() != folds {
                viol(v, loc, format!("layer {li}: width/fold shape mismatch"));
                continue;
            }
            let mut gathered: HashSet<u32> = HashSet::new();
            for (row, p) in layer.perm.iter().enumerate() {
                if let PermSource::State(a) = p {
                    if !defined.contains(a) {
                        viol(
                            v,
                            loc,
                            format!(
                                "layer {li}: row {row} gathers state {a} before any \
                                 write defines it (level-monotonicity violation)"
                            ),
                        );
                    }
                    gathered.insert(*a);
                }
            }
            let mut written: HashSet<u32> = HashSet::new();
            for (k, slots) in layer.writeback.iter().enumerate() {
                for addr in slots.iter().flatten() {
                    if !written.insert(*addr) {
                        viol(
                            v,
                            loc,
                            format!("layer {li}: state {addr} written back twice in one layer"),
                        );
                    }
                    if gathered.contains(addr) {
                        viol(
                            v,
                            loc,
                            format!(
                                "layer {li}: state {addr} both gathered and written in \
                                 one layer (read/write hazard at fold level {})",
                                k + 1
                            ),
                        );
                    }
                }
            }
            defined.extend(written);
        }
    }
}

// ------------------------------------------------------------ messages --

fn check_messages(
    decoded: &[Vec<Option<DecodedCore>>],
    ctx: &VerifyContext<'_>,
    v: &mut Vec<Violation>,
) {
    // Who writes each global slot.
    let mut writers: HashMap<u32, Vec<(usize, usize, &WriteEntry)>> = HashMap::new();
    for (si, ci, dec) in cores(decoded) {
        for w in &dec.writes {
            writers.entry(w.global).or_default().push((si, ci, w));
        }
    }

    // Slot sets the device owns (cores must not publish into them).
    let rdata_slots: HashSet<u32> = ctx
        .rams
        .iter()
        .flat_map(|r| r.rdata.iter().copied())
        .collect();
    let input_set: HashSet<u32> = ctx.input_slots.iter().copied().collect();

    for (&slot, ws) in &writers {
        if ws.len() > 1 {
            let (si, ci, _) = ws[0];
            viol(
                v,
                Some((si, ci)),
                format!(
                    "global {slot} has {} writers (one send per signal; first \
                     conflicting writer shown)",
                    ws.len()
                ),
            );
        }
        if input_set.contains(&slot) || rdata_slots.contains(&slot) {
            let (si, ci, _) = ws[0];
            viol(
                v,
                Some((si, ci)),
                format!("write to device-owned global {slot} (input or RAM read-data slot)"),
            );
        }
    }

    // Slots defined at cycle start: poked inputs, FF init ones, RAM
    // read-data (committed at the previous cycle boundary), and every
    // deferred-write target (FF next-states, primary outputs).
    let mut cycle_start: HashSet<u32> = input_set.clone();
    cycle_start.extend(ctx.initial_ones.iter().copied());
    cycle_start.extend(rdata_slots.iter().copied());
    let mut immediate_stage: HashMap<u32, usize> = HashMap::new();
    for (&slot, ws) in &writers {
        for &(si, _, w) in ws {
            if w.deferred {
                cycle_start.insert(slot);
            } else {
                let e = immediate_stage.entry(slot).or_insert(si);
                *e = (*e).min(si);
            }
        }
    }

    let mut read_slots: HashSet<u32> = HashSet::new();
    for (si, ci, dec) in cores(decoded) {
        let loc = Some((si, ci));
        let mut dests: HashSet<u16> = HashSet::new();
        let mut srcs: HashSet<u32> = HashSet::new();
        for r in &dec.reads {
            read_slots.insert(r.global);
            if !dests.insert(r.state) {
                viol(
                    v,
                    loc,
                    format!("two reads land in the same inbox state bit {}", r.state),
                );
            }
            if !srcs.insert(r.global) {
                viol(
                    v,
                    loc,
                    format!("global {} read twice by one core", r.global),
                );
            }
            let available = cycle_start.contains(&r.global)
                || immediate_stage.get(&r.global).is_some_and(|&s| s < si);
            if !available {
                if writers.contains_key(&r.global) {
                    viol(
                        v,
                        loc,
                        format!(
                            "read of global {} before its send is scheduled (the only \
                             write is immediate at stage ≥ {si})",
                            r.global
                        ),
                    );
                } else {
                    viol(
                        v,
                        loc,
                        format!(
                            "read of global {} which no core ever writes (dropped send)",
                            r.global
                        ),
                    );
                }
            }
        }
    }

    // Required sends: primary outputs need a deferred publisher, RAM
    // operands an immediate one (the RAM phase runs after the last
    // stage's barrier, before the deferred commit).
    for &slot in &ctx.output_slots {
        let ok = writers
            .get(&slot)
            .is_some_and(|ws| ws.iter().any(|(_, _, w)| w.deferred));
        if !ok {
            viol(
                v,
                None,
                format!("primary-output slot {slot} is never published (deferred write missing)"),
            );
        }
    }
    for (ri, ram) in ctx.rams.iter().enumerate() {
        for slot in ram.operand_slots() {
            let ok = writers
                .get(&slot)
                .is_some_and(|ws| ws.iter().any(|(_, _, w)| !w.deferred));
            if !ok {
                viol(
                    v,
                    None,
                    format!("RAM {ri} operand slot {slot} has no immediate writer"),
                );
            }
        }
    }
    // Initialized slots are flip-flop state: the compiler only marks a
    // slot initial-one when an FF with a set power-on value lives
    // there, and a live FF must republish its next state every cycle.
    // An initialized slot that is read but never deferred-written is a
    // dropped send masked by the power-on value.
    for &slot in &ctx.initial_ones {
        if !read_slots.contains(&slot) {
            continue;
        }
        let ok = writers
            .get(&slot)
            .is_some_and(|ws| ws.iter().any(|(_, _, w)| w.deferred));
        if !ok {
            viol(
                v,
                None,
                format!(
                    "initialized slot {slot} is read but has no deferred writer \
                     (flip-flop state never updated)"
                ),
            );
        }
    }
}

// -------------------------------------------------------------- bounds --

fn check_bounds(
    bs: &Bitstream,
    decoded: &[Vec<Option<DecodedCore>>],
    ctx: &VerifyContext<'_>,
    v: &mut Vec<Violation>,
) {
    let gb = ctx.global_bits;
    if bs.global_bits != gb {
        viol(
            v,
            None,
            format!(
                "bitstream claims {} global bits, device has {gb}",
                bs.global_bits
            ),
        );
    }
    let slot_ck = |v: &mut Vec<Violation>, what: &str, slot: u32| {
        if slot >= gb {
            viol(
                v,
                None,
                format!("{what} slot {slot} outside global array of {gb}"),
            );
        }
    };
    for (ri, ram) in ctx.rams.iter().enumerate() {
        if ram.raddr.len() != RAM_ADDR_BITS
            || ram.waddr.len() != RAM_ADDR_BITS
            || ram.wdata.len() != RAM_DATA_BITS
            || ram.rdata.len() != RAM_DATA_BITS
        {
            viol(
                v,
                None,
                format!(
                    "RAM {ri} binding shape {}a/{}a/{}d/{}d differs from the fixed \
                     {RAM_ADDR_BITS}-bit × {RAM_DATA_BITS}-bit geometry",
                    ram.raddr.len(),
                    ram.waddr.len(),
                    ram.wdata.len(),
                    ram.rdata.len()
                ),
            );
        }
        for slot in ram.operand_slots().chain(ram.rdata.iter().copied()) {
            slot_ck(v, &format!("RAM {ri}"), slot);
        }
    }
    for &s in &ctx.initial_ones {
        slot_ck(v, "initial-one", s);
    }
    for &s in &ctx.input_slots {
        slot_ck(v, "input", s);
    }
    for &s in &ctx.output_slots {
        slot_ck(v, "output", s);
    }

    for (si, ci, dec) in cores(decoded) {
        let loc = Some((si, ci));
        if dec.width != bs.width {
            viol(
                v,
                loc,
                format!("core width {} != bitstream width {}", dec.width, bs.width),
            );
        }
        let ss = dec.state_size;
        if ss == 0 || ss > dec.width {
            viol(
                v,
                loc,
                format!("state size {ss} outside 1..={} (core width)", dec.width),
            );
            continue;
        }
        let addr_ck = |v: &mut Vec<Violation>, what: &str, addr: u32| {
            if addr >= ss {
                viol(
                    v,
                    loc,
                    format!("{what} state address {addr} >= state size {ss}"),
                );
            }
        };
        for r in &dec.reads {
            addr_ck(v, "read destination", u32::from(r.state));
            if r.global >= gb {
                viol(
                    v,
                    loc,
                    format!("read of global {} outside array of {gb}", r.global),
                );
            }
        }
        for w in &dec.writes {
            if let WriteSrc::State { addr, .. } = w.src {
                addr_ck(v, "write source", u32::from(addr));
            }
            if w.global >= gb {
                viol(
                    v,
                    loc,
                    format!("write to global {} outside array of {gb}", w.global),
                );
            }
        }
        for (li, layer) in dec.layers.iter().enumerate() {
            for p in &layer.perm {
                if let PermSource::State(a) = p {
                    addr_ck(v, &format!("layer {li} gather"), *a);
                }
            }
            for slots in &layer.writeback {
                for addr in slots.iter().flatten() {
                    addr_ck(v, &format!("layer {li} writeback"), *addr);
                }
            }
        }
    }
}

// -------------------------------------------------------------- budget --

fn check_budget(
    bs: &Bitstream,
    decoded: &[Vec<Option<DecodedCore>>],
    ctx: &VerifyContext<'_>,
    v: &mut Vec<Violation>,
) {
    for (si, ci, dec) in cores(decoded) {
        let loc = Some((si, ci));
        let bytes = &bs.stages[si][ci];
        let wb_counts: Vec<usize> = dec
            .layers
            .iter()
            .map(|l| {
                l.writeback
                    .iter()
                    .map(|s| s.iter().filter(|a| a.is_some()).count())
                    .sum()
            })
            .collect();
        let expect = core_size_bits(dec.width, dec.reads.len(), dec.writes.len(), &wb_counts);
        if bytes.len() * 8 != expect {
            viol(
                v,
                loc,
                format!(
                    "encoded size {} bits does not match the instruction-count \
                     accounting of {expect} bits",
                    bytes.len() * 8
                ),
            );
        }
        if dec.reads.len() > dec.width as usize {
            viol(
                v,
                loc,
                format!(
                    "inbox over capacity: {} reads > core width {}",
                    dec.reads.len(),
                    dec.width
                ),
            );
        }
        if dec.writes.len() > ctx.global_bits as usize {
            viol(
                v,
                loc,
                format!(
                    "outbox over budget: {} writes > {} global bits",
                    dec.writes.len(),
                    ctx.global_bits
                ),
            );
        }
        let mut outbox: HashSet<u32> = HashSet::new();
        for w in &dec.writes {
            if !outbox.insert(w.global) {
                viol(
                    v,
                    loc,
                    format!("outbox publishes global {} twice from one core", w.global),
                );
            }
        }
    }
}

// --------------------------------------------------------------- merge --

fn check_merge(
    decoded: &[Vec<Option<DecodedCore>>],
    ctx: &VerifyContext<'_>,
    v: &mut Vec<Violation>,
) {
    let Some(programs) = ctx.programs else {
        return;
    };
    if programs.len() != decoded.len() {
        viol(
            v,
            None,
            format!(
                "placement has {} stage(s), bitstream has {}",
                programs.len(),
                decoded.len()
            ),
        );
        return;
    }
    for (si, (progs, stage)) in programs.iter().zip(decoded).enumerate() {
        if progs.len() != stage.len() {
            viol(
                v,
                None,
                format!(
                    "stage {si}: placement has {} core(s), bitstream has {}",
                    progs.len(),
                    stage.len()
                ),
            );
            continue;
        }
        for (ci, (prog, dec)) in progs.iter().zip(stage).enumerate() {
            let Some(dec) = dec else { continue };
            let loc = Some((si, ci));
            if dec.width != prog.width || dec.state_size != prog.state_size {
                viol(
                    v,
                    loc,
                    format!(
                        "encoded geometry {}w/{}s diverges from placed {}w/{}s",
                        dec.width, dec.state_size, prog.width, prog.state_size
                    ),
                );
            }
            if dec.layers != prog.layers {
                viol(
                    v,
                    loc,
                    "encoded layers diverge from the placed program".into(),
                );
            }
            if dec.reads.len() != prog.inputs.len() {
                viol(
                    v,
                    loc,
                    format!(
                        "{} encoded reads for {} placed sources (recv dropped or added)",
                        dec.reads.len(),
                        prog.inputs.len()
                    ),
                );
            } else {
                for (r, &(node, state)) in dec.reads.iter().zip(&prog.inputs) {
                    if u32::from(r.state) != state {
                        viol(
                            v,
                            loc,
                            format!(
                                "source n{} lands in state {} but placement assigned {state}",
                                node.0, r.state
                            ),
                        );
                    }
                }
            }
            // Every published state bit must be one of the partition's
            // sink sources; constants may additionally come from the
            // compiler's designated constant publisher (stage 0, core 0).
            let sink_addrs: HashSet<u32> = prog
                .outputs
                .iter()
                .filter_map(|o| match o {
                    OutputSource::State { addr, .. } => Some(*addr),
                    OutputSource::Const(_) => None,
                })
                .collect();
            let has_const_sink = prog
                .outputs
                .iter()
                .any(|o| matches!(o, OutputSource::Const(_)));
            for w in &dec.writes {
                match w.src {
                    WriteSrc::State { addr, .. } => {
                        if !sink_addrs.contains(&u32::from(addr)) {
                            viol(
                                v,
                                loc,
                                format!(
                                    "write of global {} reads state {addr}, which is \
                                     not a placed sink",
                                    w.global
                                ),
                            );
                        }
                    }
                    WriteSrc::Const(_) => {
                        if !(has_const_sink || (si, ci) == (0, 0)) {
                            viol(
                                v,
                                loc,
                                format!(
                                    "constant write of global {} from a core with no \
                                     constant sink",
                                    w.global
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

// ------------------------------------------------------------ schedule --

/// The seventh check family: re-derives the happens-before proof from
/// the bitstream (racing writers, reads with no ordering edge from
/// their producer) and, when the context carries a stored
/// [`ScheduleCert`], cross-checks it against a from-scratch
/// recomputation — a stale or forged certificate is a violation even if
/// the schedule itself is race-free.
fn check_schedule(
    bs: &Bitstream,
    decoded: &[Vec<Option<DecodedCore>>],
    ctx: &VerifyContext<'_>,
    v: &mut Vec<Violation>,
) {
    let before = v.len();
    let analysis = schedule::analyze_schedule(decoded, ctx, v);
    let Some(stored) = ctx.schedule_cert else {
        return;
    };
    if v.len() > before || decoded.iter().flatten().any(|d| d.is_none()) {
        viol(
            v,
            None,
            "a schedule certificate is attached but the happens-before \
             proof does not reconstruct (cert cannot be trusted)"
                .into(),
        );
        return;
    }
    let recomputed = schedule::cert_from_analysis(bs, &analysis);
    if *stored != recomputed {
        viol(
            v,
            None,
            format!(
                "stored schedule certificate does not match recomputation \
                 (stored digest {:016x}/fnv {:016x}, recomputed {:016x}/{:016x})",
                stored.table_digest,
                stored.bitstream_fnv,
                recomputed.table_digest,
                recomputed.bitstream_fnv
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certify_schedule;
    use crate::{assemble_core, ReadEntry};
    use gem_place::BoomerangLayer;

    /// A two-core, one-stage bitstream: core 0 computes `g0 AND g1` into
    /// a deferred output slot; core 1 forwards `g0` to an FF-style slot.
    fn tiny() -> (Bitstream, Vec<Vec<CoreProgram>>, VerifyContext<'static>) {
        let width = 4u32;
        let mut layer = BoomerangLayer::new(width);
        layer.perm[0] = PermSource::State(0);
        layer.perm[1] = PermSource::State(1);
        layer.writeback[0][0] = Some(2);
        let prog0 = CoreProgram {
            width,
            state_size: 3,
            inputs: vec![(gem_aig::NodeId(1), 0), (gem_aig::NodeId(2), 1)],
            layers: vec![layer],
            outputs: vec![OutputSource::State {
                addr: 2,
                invert: false,
            }],
        };
        let prog1 = CoreProgram {
            width,
            state_size: 1,
            inputs: vec![(gem_aig::NodeId(1), 0)],
            layers: vec![],
            outputs: vec![OutputSource::State {
                addr: 0,
                invert: true,
            }],
        };
        let reads0 = vec![
            ReadEntry {
                global: 0,
                state: 0,
            },
            ReadEntry {
                global: 1,
                state: 1,
            },
        ];
        let writes0 = vec![WriteEntry {
            global: 3,
            src: WriteSrc::State {
                addr: 2,
                invert: false,
            },
            deferred: true,
        }];
        let reads1 = vec![ReadEntry {
            global: 0,
            state: 0,
        }];
        let writes1 = vec![WriteEntry {
            global: 2,
            src: WriteSrc::State {
                addr: 0,
                invert: true,
            },
            deferred: true,
        }];
        let bs = Bitstream {
            width,
            global_bits: 4,
            stages: vec![vec![
                assemble_core(&prog0, &reads0, &writes0),
                assemble_core(&prog1, &reads1, &writes1),
            ]],
        };
        let ctx = VerifyContext {
            global_bits: 4,
            rams: Vec::new(),
            initial_ones: Vec::new(),
            input_slots: vec![0, 1],
            // Slot 2 is FF-like (read at cycle start via deferred write),
            // slot 3 is the primary output.
            output_slots: vec![3],
            programs: None,
            schedule_cert: None,
        };
        (bs, vec![vec![prog0, prog1]], ctx)
    }

    #[test]
    fn tiny_design_passes_all_checks() {
        let (bs, programs, mut ctx) = tiny();
        let r = verify_bitstream(&bs, &ctx);
        assert!(r.passed(), "{}", r.summary());
        assert_eq!(r.checks.len(), CHECK_NAMES.len());
        assert_eq!(r.cores, 2);
        ctx.programs = Some(&programs);
        let r = verify_bitstream(&bs, &ctx);
        assert!(r.passed(), "with programs: {}", r.summary());
    }

    #[test]
    fn valid_schedule_certifies_and_recheck_passes() {
        let (bs, _, mut ctx) = tiny();
        let cert = certify_schedule(&bs, &ctx).expect("tiny schedule certifies");
        assert_eq!(cert.version, crate::CERT_VERSION);
        assert_eq!(cert.stages, 1);
        assert_eq!(cert.cores, 2);
        // All three reads are cycle-boundary ordered (inputs + FF slot).
        assert_eq!(cert.reads, 3);
        assert_eq!(cert.boundary_edges, 3);
        assert_eq!(cert.barrier_edges, 0);
        assert!(cert.summary().contains("3 read(s)"));
        ctx.schedule_cert = Some(&cert);
        let r = verify_bitstream(&bs, &ctx);
        assert!(r.passed(), "cert recheck: {}", r.summary());
        assert_eq!(r.checks.len(), CHECK_NAMES.len());
    }

    #[test]
    fn tampered_cert_is_a_schedule_violation() {
        let (bs, _, mut ctx) = tiny();
        let mut cert = certify_schedule(&bs, &ctx).unwrap();
        cert.table_digest ^= 1;
        ctx.schedule_cert = Some(&cert);
        let r = verify_bitstream(&bs, &ctx);
        assert!(r.check("schedule").unwrap().violations > 0);
        assert!(r.summary().contains("certificate"));
    }

    #[test]
    fn racing_writers_block_certification() {
        let (bs, _, ctx) = tiny();
        // Point core 1's write at core 0's output slot: two senders, one
        // slot, no ordering between them.
        let mutant =
            crate::mutate::mutate(&bs, crate::mutate::MutationClass::DualWriterSameSlot, 1)
                .expect("dual-writer applies to tiny");
        let errs = certify_schedule(&mutant, &ctx).unwrap_err();
        assert!(errs.iter().any(|e| e.check == "schedule"));
        let r = verify_bitstream(&mutant, &ctx);
        assert!(r.check("schedule").unwrap().violations > 0);
    }

    #[test]
    fn truncated_core_is_a_roundtrip_violation_not_a_panic() {
        let (mut bs, _, ctx) = tiny();
        let len = bs.stages[0][0].len();
        bs.stages[0][0].truncate(len / 2);
        let r = verify_bitstream(&bs, &ctx);
        assert!(!r.passed());
        assert!(r.check("roundtrip").unwrap().violations > 0);
    }

    #[test]
    fn undefined_gather_is_flagged() {
        let (_, mut programs, ctx) = tiny();
        // Gather state 3, which nothing defines.
        let prog = &mut programs[0][0];
        if let Some(layer) = prog.layers.first_mut() {
            layer.perm[3] = PermSource::State(2);
        }
        prog.state_size = 4;
        let reads = vec![
            ReadEntry {
                global: 0,
                state: 0,
            },
            ReadEntry {
                global: 1,
                state: 1,
            },
        ];
        let writes = vec![WriteEntry {
            global: 3,
            src: WriteSrc::State {
                addr: 2,
                invert: false,
            },
            deferred: true,
        }];
        let core0 = assemble_core(prog, &reads, &writes);
        let (mut bs, _, _) = tiny();
        bs.stages[0][0] = core0;
        let r = verify_bitstream(&bs, &ctx);
        assert!(
            r.check("layers").unwrap().violations > 0,
            "gather of a written-later bit must be flagged: {}",
            r.summary()
        );
    }

    #[test]
    fn missing_output_publisher_is_flagged() {
        let (bs, _, mut ctx) = tiny();
        ctx.output_slots.push(99);
        ctx.global_bits = 128;
        let mut bs = bs;
        bs.global_bits = 128;
        let r = verify_bitstream(&bs, &ctx);
        assert!(r.check("messages").unwrap().violations > 0);
    }

    #[test]
    fn report_summary_mentions_violations() {
        let (mut bs, _, ctx) = tiny();
        bs.stages[0][1].truncate(4);
        let r = verify_bitstream(&bs, &ctx);
        assert!(!r.passed());
        assert!(r.summary().contains("violation"));
        assert!(r.total_violations() >= 1);
    }
}
