//! Seeded bitstream mutator: the verifier's sparring partner.
//!
//! A static checker that nobody attacks silently rots — a refactor can
//! weaken a check and every test still passes, because valid bitstreams
//! exercise only the "accept" path. The mutation self-test harness
//! (`tests/mutation_kill.rs`) closes that hole: it corrupts known-good
//! bitstreams in each [`MutationClass`] and asserts
//! [`crate::verify_bitstream`] kills every mutant. Each class targets a
//! specific check family, so a surviving mutant names the check that
//! regressed.
//!
//! Mutations come in two flavors:
//!
//! * **Structured** — decode a core, perturb the [`crate::DecodedCore`],
//!   re-encode canonically. The mutant is a *well-formed* program whose
//!   semantics are wrong, so only the semantic checks (`layers`,
//!   `messages`, `bounds`, `budget`, `merge`) can catch it.
//! * **Raw** — byte-level damage (truncation, trailing garbage, header
//!   count corruption) that the `roundtrip` check must catch.
//!
//! All randomness is a local SplitMix64 over the caller's seed; the same
//! `(bitstream, class, seed)` triple always yields the same mutant.

use crate::{assemble_decoded, disassemble_core, Bitstream, DecodedCore, WriteSrc};
use gem_place::PermSource;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The ways a bitstream can be corrupted, each aimed at one verifier
/// check family (noted per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationClass {
    /// Swap two distinct boomerang layers (`merge`, often `layers`).
    SwapLayers,
    /// Drop a `READ_GLOBAL` entry — a lost recv (`layers`/`merge`).
    DropRead,
    /// Drop a `WRITE_GLOBAL` entry whose slot someone reads — a lost
    /// send (`messages`).
    DropWrite,
    /// Duplicate a write with a flipped source — two senders racing on
    /// one slot (`messages`, `budget`).
    DupWrite,
    /// Point a read's inbox destination past the state array (`bounds`).
    ReadAddrOob,
    /// Point a write-back at `state_size` (`bounds`).
    WritebackAddrOob,
    /// Point a read or write past the global signal array (`bounds`).
    GlobalOob,
    /// Shrink the declared state size below the highest used address
    /// (`bounds`).
    StateSizeShrink,
    /// Retarget a permutation source to constant-false (`merge`).
    PermRetarget,
    /// Flip one fold constant bit (`merge`).
    FoldFlip,
    /// Truncate a core program mid-word (`roundtrip`).
    TruncateCore,
    /// Append garbage bytes after a core program (`roundtrip`).
    TrailingGarbage,
    /// Bump the `INIT` layer count so the headers lie (`roundtrip`).
    CorruptCounts,
    /// Flip a deferred send to immediate so a reader at the same or an
    /// earlier stage receives the message *before* its producer runs —
    /// a happens-before race the `schedule` certification must kill
    /// (`schedule`, also `messages`).
    MsgBeforeProducer,
    /// Add a second sender to a slot another core already publishes —
    /// two writers racing on one slot within a cycle (`schedule`, also
    /// `messages`).
    DualWriterSameSlot,
}

/// Every mutation class, in a stable order (the self-test iterates this).
pub const ALL_CLASSES: [MutationClass; 15] = [
    MutationClass::SwapLayers,
    MutationClass::DropRead,
    MutationClass::DropWrite,
    MutationClass::DupWrite,
    MutationClass::ReadAddrOob,
    MutationClass::WritebackAddrOob,
    MutationClass::GlobalOob,
    MutationClass::StateSizeShrink,
    MutationClass::PermRetarget,
    MutationClass::FoldFlip,
    MutationClass::TruncateCore,
    MutationClass::TrailingGarbage,
    MutationClass::CorruptCounts,
    MutationClass::MsgBeforeProducer,
    MutationClass::DualWriterSameSlot,
];

/// The classes whose mutants are detectable from the bitstream and
/// device context alone. The other three (`swap_layers`,
/// `perm_retarget`, `fold_flip`) produce well-formed, in-bounds programs
/// that only the `merge` consistency check — which needs placement
/// metadata — can distinguish from the original; fault drills against
/// `.gemb` packages (which carry no programs) must draw from this set.
pub const PROGRAM_FREE_CLASSES: [MutationClass; 12] = [
    MutationClass::DropRead,
    MutationClass::DropWrite,
    MutationClass::DupWrite,
    MutationClass::ReadAddrOob,
    MutationClass::WritebackAddrOob,
    MutationClass::GlobalOob,
    MutationClass::StateSizeShrink,
    MutationClass::TruncateCore,
    MutationClass::TrailingGarbage,
    MutationClass::CorruptCounts,
    MutationClass::MsgBeforeProducer,
    MutationClass::DualWriterSameSlot,
];

impl MutationClass {
    /// Stable snake_case name (used in test output and docs).
    pub fn name(self) -> &'static str {
        match self {
            MutationClass::SwapLayers => "swap_layers",
            MutationClass::DropRead => "drop_read",
            MutationClass::DropWrite => "drop_write",
            MutationClass::DupWrite => "dup_write",
            MutationClass::ReadAddrOob => "read_addr_oob",
            MutationClass::WritebackAddrOob => "writeback_addr_oob",
            MutationClass::GlobalOob => "global_oob",
            MutationClass::StateSizeShrink => "state_size_shrink",
            MutationClass::PermRetarget => "perm_retarget",
            MutationClass::FoldFlip => "fold_flip",
            MutationClass::TruncateCore => "truncate_core",
            MutationClass::TrailingGarbage => "trailing_garbage",
            MutationClass::CorruptCounts => "corrupt_counts",
            MutationClass::MsgBeforeProducer => "msg_before_producer",
            MutationClass::DualWriterSameSlot => "dual_writer_same_slot",
        }
    }
}

impl fmt::Display for MutationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// SplitMix64, kept local so the ISA crate stays dependency-free.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Cross-core facts a structured mutation may need: who reads what (and
/// how early), and who writes what. Precomputed once per [`mutate`] call
/// from the whole bitstream, since a single core sees only its own
/// program.
struct MutCtx {
    /// Slots some core reads: the drop-write class must hit one of these
    /// so the lost send is observable.
    read_globals: HashSet<u32>,
    /// Earliest stage at which each global is read.
    read_min_stage: HashMap<u32, usize>,
    /// One writer coordinate per written global.
    writer_coords: HashMap<u32, (usize, usize)>,
    /// Coordinate of the core being mutated.
    at: (usize, usize),
}

/// Applies `class` to one core of `bs`, chosen by seeded rotation over
/// the cores until one admits the mutation. Returns `None` when no core
/// does (e.g. `SwapLayers` on a design whose every core has fewer than
/// two distinct layers) — the self-test treats that as "class not
/// applicable to this fixture", never as a pass.
pub fn mutate(bs: &Bitstream, class: MutationClass, seed: u64) -> Option<Bitstream> {
    let coords: Vec<(usize, usize)> = bs
        .stages
        .iter()
        .enumerate()
        .flat_map(|(si, s)| (0..s.len()).map(move |ci| (si, ci)))
        .collect();
    if coords.is_empty() {
        return None;
    }
    let mut read_globals: HashSet<u32> = HashSet::new();
    let mut read_min_stage: HashMap<u32, usize> = HashMap::new();
    let mut writer_coords: HashMap<u32, (usize, usize)> = HashMap::new();
    for &(si, ci) in &coords {
        let Ok(d) = disassemble_core(&bs.stages[si][ci]) else {
            continue;
        };
        for r in &d.reads {
            read_globals.insert(r.global);
            let e = read_min_stage.entry(r.global).or_insert(si);
            *e = (*e).min(si);
        }
        for w in &d.writes {
            writer_coords.entry(w.global).or_insert((si, ci));
        }
    }
    let mut ctx = MutCtx {
        read_globals,
        read_min_stage,
        writer_coords,
        at: (0, 0),
    };
    let mut rng = SplitMix64::new(seed.wrapping_mul(0x100_0000_01B3) ^ class as u64);
    let start = rng.below(coords.len());
    for k in 0..coords.len() {
        let (si, ci) = coords[(start + k) % coords.len()];
        ctx.at = (si, ci);
        if let Some(bytes) = apply(class, &bs.stages[si][ci], bs, &ctx, &mut rng) {
            let mut out = bs.clone();
            out.stages[si][ci] = bytes;
            return Some(out);
        }
    }
    None
}

/// Fault-injection entry point for the compile flow's `verify_fault`
/// knob: rotates through [`ALL_CLASSES`] from a seeded start and applies
/// the first class the bitstream admits. Falls back to an unmodified
/// clone only for degenerate (core-less) bitstreams.
pub fn corrupt(bs: &Bitstream, seed: u64) -> Bitstream {
    corrupt_from(bs, seed, &ALL_CLASSES)
}

/// Like [`corrupt`], drawing only from the given class set (e.g.
/// [`PROGRAM_FREE_CLASSES`] when the verifier will run without placement
/// metadata).
pub fn corrupt_from(bs: &Bitstream, seed: u64, classes: &[MutationClass]) -> Bitstream {
    for k in 0..classes.len() {
        let class = classes[(seed as usize + k) % classes.len()];
        if let Some(mutant) = mutate(bs, class, seed) {
            return mutant;
        }
    }
    bs.clone()
}

fn apply(
    class: MutationClass,
    bytes: &[u8],
    bs: &Bitstream,
    ctx: &MutCtx,
    rng: &mut SplitMix64,
) -> Option<Vec<u8>> {
    match class {
        // Raw byte damage: no decode involved.
        MutationClass::TruncateCore => {
            if bytes.len() < 8 {
                return None;
            }
            let keep = bytes.len() - (bytes.len() / 4 + 1);
            Some(bytes[..keep].to_vec())
        }
        MutationClass::TrailingGarbage => {
            let mut out = bytes.to_vec();
            out.extend_from_slice(&[0xA5; 8]);
            Some(out)
        }
        MutationClass::CorruptCounts => {
            if bytes.len() < 16 {
                return None;
            }
            let mut out = bytes.to_vec();
            let n_layers = u32::from_le_bytes([out[12], out[13], out[14], out[15]]);
            out[12..16].copy_from_slice(&n_layers.wrapping_add(1).to_le_bytes());
            Some(out)
        }
        // Structured damage: decode, perturb, canonical re-encode.
        _ => {
            let mut dec = disassemble_core(bytes).ok()?;
            mutate_decoded(class, &mut dec, bs, ctx, rng)?;
            Some(assemble_decoded(&dec))
        }
    }
}

fn mutate_decoded(
    class: MutationClass,
    dec: &mut DecodedCore,
    bs: &Bitstream,
    ctx: &MutCtx,
    rng: &mut SplitMix64,
) -> Option<()> {
    match class {
        MutationClass::SwapLayers => {
            if dec.layers.len() < 2 {
                return None;
            }
            let i = rng.below(dec.layers.len());
            let j = (0..dec.layers.len()).find(|&j| dec.layers[j] != dec.layers[i])?;
            dec.layers.swap(i, j);
        }
        MutationClass::DropRead => {
            // Only drop a read whose landing bit is gathered *before*
            // any writeback redefines it: the placer recycles state
            // addresses, so a bit that is written back early would make
            // the hole invisible to the layers check (detectable only
            // via the merge check, which needs placement metadata —
            // and this class is in [`PROGRAM_FREE_CLASSES`]).
            let mut first_gather: std::collections::HashMap<u32, usize> = Default::default();
            let mut first_wb: std::collections::HashMap<u32, usize> = Default::default();
            for (li, l) in dec.layers.iter().enumerate() {
                for p in &l.perm {
                    if let PermSource::State(a) = p {
                        first_gather.entry(*a).or_insert(li);
                    }
                }
                for a in l.writeback.iter().flatten().flatten() {
                    first_wb.entry(*a).or_insert(li);
                }
            }
            let candidates: Vec<usize> = (0..dec.reads.len())
                .filter(|&i| {
                    let a = u32::from(dec.reads[i].state);
                    first_gather
                        .get(&a)
                        .is_some_and(|&g| first_wb.get(&a).is_none_or(|&w| w >= g))
                })
                .collect();
            if candidates.is_empty() {
                return None;
            }
            dec.reads.remove(candidates[rng.below(candidates.len())]);
        }
        MutationClass::DropWrite => {
            let candidates: Vec<usize> = (0..dec.writes.len())
                .filter(|&i| ctx.read_globals.contains(&dec.writes[i].global))
                .collect();
            if candidates.is_empty() {
                return None;
            }
            dec.writes.remove(candidates[rng.below(candidates.len())]);
        }
        MutationClass::DupWrite => {
            if dec.writes.is_empty() {
                return None;
            }
            let i = rng.below(dec.writes.len());
            let mut dup = dec.writes[i];
            dup.src = match dup.src {
                WriteSrc::State { addr, invert } => WriteSrc::State {
                    addr,
                    invert: !invert,
                },
                WriteSrc::Const(v) => WriteSrc::Const(!v),
            };
            dec.writes.insert(i + 1, dup);
        }
        MutationClass::ReadAddrOob => {
            if dec.reads.is_empty() || dec.state_size > 0x7FFF {
                return None;
            }
            let i = rng.below(dec.reads.len());
            dec.reads[i].state = 0x7FFF;
        }
        MutationClass::WritebackAddrOob => {
            // The write-back field is 13-bit, so the smallest illegal
            // address (state_size itself) must still be encodable.
            if dec.state_size >= 1 << 13 {
                return None;
            }
            let slot = dec
                .layers
                .iter_mut()
                .flat_map(|l| l.writeback.iter_mut())
                .flat_map(|s| s.iter_mut())
                .find(|a| a.is_some())?;
            *slot = Some(dec.state_size);
        }
        MutationClass::GlobalOob => {
            let bad = bs.global_bits + 1 + rng.below(100) as u32;
            if !dec.reads.is_empty() && (dec.writes.is_empty() || rng.below(2) == 0) {
                let i = rng.below(dec.reads.len());
                dec.reads[i].global = bad;
            } else if !dec.writes.is_empty() {
                let i = rng.below(dec.writes.len());
                dec.writes[i].global = bad;
            } else {
                return None;
            }
        }
        MutationClass::StateSizeShrink => {
            let mut max_addr: Option<u32> = None;
            let mut note = |a: u32| max_addr = Some(max_addr.map_or(a, |m| m.max(a)));
            for r in &dec.reads {
                note(u32::from(r.state));
            }
            for w in &dec.writes {
                if let WriteSrc::State { addr, .. } = w.src {
                    note(u32::from(addr));
                }
            }
            for l in &dec.layers {
                for p in &l.perm {
                    if let PermSource::State(a) = p {
                        note(*a);
                    }
                }
                for s in &l.writeback {
                    for a in s.iter().flatten() {
                        note(*a);
                    }
                }
            }
            // Declaring exactly max_addr puts the highest-used address
            // one past the end of the state array.
            dec.state_size = max_addr?;
        }
        MutationClass::PermRetarget => {
            let slot = dec
                .layers
                .iter_mut()
                .flat_map(|l| l.perm.iter_mut())
                .find(|p| matches!(p, PermSource::State(_)))?;
            *slot = PermSource::ConstFalse;
        }
        MutationClass::FoldFlip => {
            if dec.layers.is_empty() {
                return None;
            }
            let li = rng.below(dec.layers.len());
            let layer = &mut dec.layers[li];
            if layer.folds.is_empty() {
                return None;
            }
            let k = rng.below(layer.folds.len());
            let j = rng.below(layer.folds[k].xa.len().max(1));
            let bit = layer.folds[k].xa.get_mut(j)?;
            *bit = !*bit;
        }
        MutationClass::MsgBeforeProducer => {
            // Flip a deferred send to immediate when some core reads the
            // slot at this stage or earlier: the cycle-boundary
            // happens-before edge disappears and the only remaining
            // producer is an immediate write the reader cannot be
            // ordered after.
            let (si, _) = ctx.at;
            let candidates: Vec<usize> = (0..dec.writes.len())
                .filter(|&i| {
                    dec.writes[i].deferred
                        && ctx
                            .read_min_stage
                            .get(&dec.writes[i].global)
                            .is_some_and(|&rs| rs <= si)
                })
                .collect();
            if candidates.is_empty() {
                return None;
            }
            dec.writes[candidates[rng.below(candidates.len())]].deferred = false;
        }
        MutationClass::DualWriterSameSlot => {
            // Add a second sender to a slot a *different* core already
            // publishes. The payload is a constant so the mutant stays
            // in-bounds for any state size — the only broken invariant
            // is the single-writer-per-slot rule.
            let already: HashSet<u32> = dec.writes.iter().map(|w| w.global).collect();
            let mut candidates: Vec<(u32, bool)> = Vec::new();
            for (&global, &coord) in &ctx.writer_coords {
                if coord != ctx.at && !already.contains(&global) {
                    // Match the victim's deferred flag so the slot's
                    // cycle-start membership is unchanged and the race
                    // is the sole defect.
                    if let Ok(victim) = disassemble_core(&bs.stages[coord.0][coord.1]) {
                        if let Some(w) = victim.writes.iter().find(|w| w.global == global) {
                            candidates.push((global, w.deferred));
                        }
                    }
                }
            }
            if candidates.is_empty() {
                return None;
            }
            candidates.sort_unstable();
            let (global, deferred) = candidates[rng.below(candidates.len())];
            dec.writes.push(crate::WriteEntry {
                global,
                src: WriteSrc::Const(rng.below(2) == 1),
                deferred,
            });
        }
        _ => unreachable!("raw classes handled in apply()"),
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assemble_core, ReadEntry, WriteEntry};
    use gem_place::{BoomerangLayer, CoreProgram, OutputSource};

    fn sample_bitstream() -> Bitstream {
        let width = 16u32;
        let mut layer = BoomerangLayer::new(width);
        layer.perm[0] = PermSource::State(0);
        layer.perm[1] = PermSource::State(1);
        layer.writeback[0][0] = Some(2);
        let mut layer2 = BoomerangLayer::new(width);
        layer2.perm[0] = PermSource::State(2);
        layer2.writeback[0][1] = Some(3);
        let prog = CoreProgram {
            width,
            state_size: 4,
            inputs: vec![(gem_aig::NodeId(1), 0), (gem_aig::NodeId(2), 1)],
            layers: vec![layer, layer2],
            outputs: vec![OutputSource::State {
                addr: 3,
                invert: false,
            }],
        };
        let reads = vec![
            ReadEntry {
                global: 0,
                state: 0,
            },
            ReadEntry {
                global: 1,
                state: 1,
            },
        ];
        let writes = vec![WriteEntry {
            global: 2,
            src: WriteSrc::State {
                addr: 3,
                invert: false,
            },
            deferred: true,
        }];
        Bitstream {
            width,
            global_bits: 3,
            stages: vec![vec![assemble_core(&prog, &reads, &writes)]],
        }
    }

    #[test]
    fn mutations_are_deterministic_and_change_the_bytes() {
        let bs = sample_bitstream();
        for class in ALL_CLASSES {
            let Some(a) = mutate(&bs, class, 7) else {
                continue;
            };
            let b = mutate(&bs, class, 7).expect("same seed, same applicability");
            assert_eq!(a, b, "{class} not deterministic");
            assert_ne!(a, bs, "{class} must alter the bitstream");
        }
    }

    #[test]
    fn most_classes_apply_to_a_small_design() {
        let bs = sample_bitstream();
        let applicable = ALL_CLASSES
            .iter()
            .filter(|c| mutate(&bs, **c, 1).is_some())
            .count();
        // drop_write needs a cross-core reader, and the two schedule-race
        // classes need either a same-stage reader of a deferred slot or a
        // second core to race against; everything else should land on
        // this single-core fixture.
        assert!(applicable >= ALL_CLASSES.len() - 3, "{applicable} classes");
    }

    #[test]
    fn corrupt_always_returns_a_different_bitstream_when_possible() {
        let bs = sample_bitstream();
        for seed in 1..=16u64 {
            assert_ne!(corrupt(&bs, seed), bs, "seed {seed}");
        }
    }
}
