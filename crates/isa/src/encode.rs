//! Bitstream assembly.

use crate::{init_bits, io_bits, io_entries, perm_words, wb_entries, wide_bits};
use gem_place::{CoreProgram, PermSource};

/// One `READ_GLOBAL` entry: load global bit `global` into core state bit
/// `state` at the start of each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadEntry {
    /// Index into the device-global signal array.
    pub global: u32,
    /// Core state address.
    pub state: u16,
}

/// The data source of a `WRITE_GLOBAL` entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteSrc {
    /// Core state bit, optionally inverted on the way out.
    State {
        /// Core state address.
        addr: u16,
        /// Invert on write.
        invert: bool,
    },
    /// Constant bit.
    Const(bool),
}

/// One `WRITE_GLOBAL` entry: publish a bit to the global signal array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteEntry {
    /// Destination index in the device-global signal array.
    pub global: u32,
    /// Where the bit comes from.
    pub src: WriteSrc,
    /// Deferred writes are committed at the end of the cycle (flip-flop
    /// next-states, outputs); immediate writes are visible to the next
    /// stage within the cycle (cut signals, RAM port operands).
    pub deferred: bool,
}

/// A bit-granular little-endian writer.
#[derive(Debug, Default)]
struct BitWriter {
    bytes: Vec<u8>,
    bit: usize,
}

impl BitWriter {
    fn pad_to(&mut self, bits: usize) {
        assert!(self.bit <= bits, "overflowed instruction word");
        self.bytes.resize(bits / 8, 0);
        self.bit = bits;
    }

    fn push_bit(&mut self, v: bool) {
        let byte = self.bit / 8;
        if byte >= self.bytes.len() {
            self.bytes.push(0);
        }
        if v {
            self.bytes[byte] |= 1 << (self.bit % 8);
        }
        self.bit += 1;
    }

    fn push_bits(&mut self, v: u64, n: usize) {
        for i in 0..n {
            self.push_bit((v >> i) & 1 == 1);
        }
    }
}

/// Assembles one core program into its binary form.
///
/// `reads` and `writes` are the resolved global-memory bindings (the
/// compiler in `gem-core` maps partition sources/sinks to global indices).
///
/// # Panics
///
/// Panics if the program's addresses exceed the field widths (state
/// addresses are 13-bit at the paper's core width).
pub fn assemble_core(prog: &CoreProgram, reads: &[ReadEntry], writes: &[WriteEntry]) -> Vec<u8> {
    let w = prog.width;
    let folds = w.trailing_zeros() as usize;
    let mut out = BitWriter::default();

    // INIT word.
    let base = out.bit;
    out.push_bits(u64::from(u32::from_le_bytes(*b"GEMB")), 32);
    out.push_bits(w as u64, 32);
    out.push_bits(prog.state_size as u64, 32);
    out.push_bits(prog.layers.len() as u64, 32);
    out.push_bits(reads.len() as u64, 32);
    out.push_bits(writes.len() as u64, 32);
    out.push_bits(folds as u64, 32);
    out.pad_to(base + init_bits(w));

    // READ_GLOBAL words.
    let per_word = io_entries(w);
    for chunk in reads.chunks(per_word.max(1)) {
        let base = out.bit;
        for e in chunk {
            out.push_bits(e.global as u64, 32);
            out.push_bits(e.state as u64, 16);
            out.push_bits(0, 16);
        }
        out.pad_to(base + io_bits(w));
    }

    // Layers.
    for layer in &prog.layers {
        // PERMUTE words: 16-bit source codes.
        let pw = perm_words(w);
        let codes_per_word = layer.perm.len().div_ceil(pw);
        for chunk in layer.perm.chunks(codes_per_word) {
            let base = out.bit;
            for s in chunk {
                let code: u16 = match s {
                    PermSource::State(a) => {
                        assert!(*a < 0x8000, "state address too wide");
                        *a as u16
                    }
                    PermSource::ConstFalse => 0x8000,
                };
                out.push_bits(code as u64, 16);
            }
            out.pad_to(base + wide_bits(w));
        }
        // FOLD word: xa/xb/ob per level, then the writeback word count in
        // the top 32 bits.
        let base = out.bit;
        for (k, fc) in layer.folds.iter().enumerate() {
            let _ = k;
            for &b in &fc.xa {
                out.push_bit(b);
            }
            for &b in &fc.xb {
                out.push_bit(b);
            }
            for &b in &fc.ob {
                out.push_bit(b);
            }
        }
        let wb: Vec<(u32, u32, u32)> = layer
            .writeback
            .iter()
            .enumerate()
            .flat_map(|(k, slots)| {
                slots
                    .iter()
                    .enumerate()
                    .filter_map(move |(j, a)| a.map(|addr| (k as u32 + 1, j as u32, addr)))
            })
            .collect();
        let wb_words = wb.len().div_ceil(wb_entries(w).max(1));
        out.pad_to(base + wide_bits(w) - 32);
        out.push_bits(wb_words as u64, 32);
        debug_assert_eq!(out.bit, base + wide_bits(w));
        // WRITEBACK words.
        for chunk in wb.chunks(wb_entries(w).max(1)) {
            let base = out.bit;
            out.push_bits(chunk.len() as u64, 32);
            for &(level, slot, addr) in chunk {
                assert!(level < 32 && slot < (1 << 14) && addr < (1 << 13));
                out.push_bits(level as u64, 5);
                out.push_bits(slot as u64, 14);
                out.push_bits(addr as u64, 13);
            }
            out.pad_to(base + wide_bits(w));
        }
    }

    // WRITE_GLOBAL words.
    for chunk in writes.chunks(per_word.max(1)) {
        let base = out.bit;
        for e in chunk {
            out.push_bits(e.global as u64, 32);
            let src: u16 = match e.src {
                WriteSrc::State { addr, invert } => {
                    assert!(addr < (1 << 13), "state address too wide");
                    addr | ((invert as u16) << 14)
                }
                WriteSrc::Const(v) => 0x8000 | v as u16,
            };
            out.push_bits(src as u64, 16);
            out.push_bits(e.deferred as u64, 16);
        }
        out.pad_to(base + io_bits(w));
    }

    out.bytes
}

/// Re-assembles a decoded core into its canonical byte form.
///
/// [`assemble_core`] consumes only the program's width, state size, and
/// layers (source/sink bindings live in the `reads`/`writes` tables), so
/// a [`crate::DecodedCore`] — which carries exactly those plus the
/// tables — re-encodes without the compiler's node-identity metadata.
/// For any output of the encoder, `assemble_decoded(disassemble(x)) == x`;
/// the static verifier's round-trip check is built on this.
pub fn assemble_decoded(dec: &crate::DecodedCore) -> Vec<u8> {
    let prog = CoreProgram {
        width: dec.width,
        state_size: dec.state_size,
        inputs: Vec::new(),
        layers: dec.layers.clone(),
        outputs: Vec::new(),
    };
    assemble_core(&prog, &dec.reads, &dec.writes)
}

/// A complete compiled design: per-stage core programs plus the global
/// signal-space size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitstream {
    /// Core width all programs were compiled for.
    pub width: u32,
    /// Size of the device-global signal array in bits.
    pub global_bits: u32,
    /// `stages[s][c]` = assembled bytes of core `c` in stage `s`.
    pub stages: Vec<Vec<Vec<u8>>>,
}

impl Bitstream {
    /// Total assembled size in bytes (the Table I "Bitstream" column).
    pub fn total_bytes(&self) -> usize {
        self.stages
            .iter()
            .flat_map(|s| s.iter().map(Vec::len))
            .sum()
    }

    /// Number of cores across all stages.
    pub fn total_cores(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// Serializes the container (header + programs) for storage.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(b"GEMS");
        v.extend_from_slice(&self.width.to_le_bytes());
        v.extend_from_slice(&self.global_bits.to_le_bytes());
        v.extend_from_slice(&(self.stages.len() as u32).to_le_bytes());
        for s in &self.stages {
            v.extend_from_slice(&(s.len() as u32).to_le_bytes());
            for c in s {
                v.extend_from_slice(&(c.len() as u32).to_le_bytes());
                v.extend_from_slice(c);
            }
        }
        v
    }

    /// Parses a container produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns a message when the container is truncated or has a bad
    /// magic number.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            if *pos + n > bytes.len() {
                return Err("truncated bitstream container".into());
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let u32_at = |pos: &mut usize| -> Result<u32, String> {
            let s = take(pos, 4)?;
            Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
        };
        if take(&mut pos, 4)? != b"GEMS" {
            return Err("bad container magic".into());
        }
        let width = u32_at(&mut pos)?;
        let global_bits = u32_at(&mut pos)?;
        let n_stages = u32_at(&mut pos)? as usize;
        let mut stages = Vec::with_capacity(n_stages);
        for _ in 0..n_stages {
            let n_cores = u32_at(&mut pos)? as usize;
            let mut cores = Vec::with_capacity(n_cores);
            for _ in 0..n_cores {
                let len = u32_at(&mut pos)? as usize;
                cores.push(take(&mut pos, len)?.to_vec());
            }
            stages.push(cores);
        }
        Ok(Bitstream {
            width,
            global_bits,
            stages,
        })
    }
}
