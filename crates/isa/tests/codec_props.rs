//! Property tests for the bitstream codec: seeded random programs must
//! round-trip bit-exactly through encode → decode → encode, and every
//! malformed buffer — truncated at any byte, padded with trailing
//! bytes, or scribbled over — must come back as a typed
//! [`DecodeError`], never a panic.

use gem_isa::{
    assemble_decoded, disassemble_core, disassemble_core_exact, DecodeError, DecodedCore,
    ReadEntry, WriteEntry, WriteSrc,
};
use gem_place::{BoomerangLayer, PermSource};

/// Local SplitMix64 (the workspace's fixed-seed convention; no external
/// RNG crates).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// A random but *encodable* core: every field stays inside the
/// encoder's asserted ranges (perm/write state addresses < 2^13,
/// power-of-two width, full fold/writeback shapes), while exercising
/// the whole format — empty and dense read/write lists, zero to several
/// layers, all three write sources.
fn random_core(rng: &mut Rng) -> DecodedCore {
    let width = [4u32, 8, 16, 32][rng.below(4) as usize];
    let state_size = 1 + rng.below(500) as u32;
    let reads = (0..rng.below(u64::from(width) + 1))
        .map(|_| ReadEntry {
            global: rng.below(2000) as u32,
            state: rng.below(u64::from(state_size)) as u16,
        })
        .collect();
    let layers = (0..rng.below(4))
        .map(|_| {
            let mut l = BoomerangLayer::new(width);
            for p in l.perm.iter_mut() {
                if rng.chance(1, 2) {
                    *p = PermSource::State(rng.below(u64::from(state_size)) as u32);
                }
            }
            for f in l.folds.iter_mut() {
                for b in f.xa.iter_mut().chain(&mut f.xb).chain(&mut f.ob) {
                    *b = rng.chance(1, 2);
                }
            }
            for row in l.writeback.iter_mut() {
                for s in row.iter_mut() {
                    if rng.chance(1, 3) {
                        *s = Some(rng.below(u64::from(state_size)) as u32);
                    }
                }
            }
            l
        })
        .collect();
    let writes = (0..rng.below(6))
        .map(|_| WriteEntry {
            global: rng.below(2000) as u32,
            src: if rng.chance(1, 4) {
                WriteSrc::Const(rng.chance(1, 2))
            } else {
                WriteSrc::State {
                    addr: rng.below(u64::from(state_size)) as u16,
                    invert: rng.chance(1, 2),
                }
            },
            deferred: rng.chance(1, 2),
        })
        .collect();
    DecodedCore {
        width,
        state_size,
        reads,
        layers,
        writes,
    }
}

#[test]
fn random_programs_round_trip_bit_exactly() {
    let mut rng = Rng::new(0x0DEC_0DE5);
    for case in 0..64 {
        let dec = random_core(&mut rng);
        let bytes = assemble_decoded(&dec);
        let back = disassemble_core_exact(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: decode of own encoding failed: {e}"));
        assert_eq!(back, dec, "case {case}: structural round-trip drifted");
        assert_eq!(
            assemble_decoded(&back),
            bytes,
            "case {case}: re-encode is not bit-exact"
        );
    }
}

#[test]
fn every_truncation_is_a_typed_error_not_a_panic() {
    let mut rng = Rng::new(0x7256);
    for case in 0..8 {
        let bytes = assemble_decoded(&random_core(&mut rng));
        for len in 0..bytes.len() {
            let prefix = &bytes[..len];
            let strict = disassemble_core_exact(prefix);
            assert!(
                strict.is_err(),
                "case {case}: {len}-byte prefix of a {}-byte program decoded",
                bytes.len()
            );
            // The lenient decoder must agree (a prefix never contains a
            // complete program, because the headers fix the length).
            assert!(disassemble_core(prefix).is_err());
        }
    }
}

#[test]
fn oversized_buffers_report_trailing_bytes() {
    let mut rng = Rng::new(0xB16);
    for case in 0..8 {
        let bytes = assemble_decoded(&random_core(&mut rng));
        for extra in 1..=9usize {
            let mut padded = bytes.clone();
            padded.extend(std::iter::repeat_n(0u8, extra));
            match disassemble_core_exact(&padded) {
                Err(DecodeError::TrailingBytes(n)) => {
                    assert_eq!(n, extra, "case {case}: wrong trailing count")
                }
                other => panic!("case {case} extra {extra}: expected TrailingBytes, got {other:?}"),
            }
            // The lenient decoder ignores the padding and still yields
            // the original program.
            let lenient = disassemble_core(&padded)
                .unwrap_or_else(|e| panic!("case {case}: lenient decode failed: {e}"));
            assert_eq!(assemble_decoded(&lenient), bytes);
        }
    }
}

#[test]
fn garbage_and_empty_buffers_fail_cleanly() {
    assert_eq!(disassemble_core(&[]), Err(DecodeError::Truncated));
    // A wrong magic word is reported as such, with the offending value.
    let mut bytes = assemble_decoded(&random_core(&mut Rng::new(3)));
    bytes[0] ^= 0xFF;
    assert!(matches!(
        disassemble_core(&bytes),
        Err(DecodeError::BadMagic(_))
    ));
    // Random byte soup: any typed error is fine; a panic is not.
    let mut rng = Rng::new(0x50_0F);
    for _ in 0..200 {
        let n = rng.below(64) as usize;
        let buf: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        let _ = disassemble_core(&buf);
        let _ = disassemble_core_exact(&buf);
    }
}
