//! Mutation self-test: the verifier must kill every mutant.
//!
//! For each [`MutationClass`] the harness corrupts known-good compiled
//! bitstreams (a deep combinational design, a counter, a RAM design,
//! and a handful of fuzz-generated modules) with several seeds and
//! asserts [`gem_isa::verify_bitstream`] rejects every single mutant. A
//! surviving mutant means a verifier check regressed — the failure
//! message names the class and seed, which reproduce the mutant
//! deterministically.
//!
//! The dual baseline — every *unmutated* bitstream must verify clean —
//! keeps the harness honest: a verifier that rejects everything would
//! also "kill" all mutants.

use gem_core::{compile, CompileOptions, Compiled};
use gem_isa::mutate::{mutate, MutationClass, ALL_CLASSES};
use gem_isa::verify_bitstream;
use gem_netlist::{Module, ModuleBuilder, ReadKind};
use gem_sim::{random_module, FuzzConfig};

/// Deep chained arithmetic: enough logic levels for multi-layer
/// boomerang programs, and enough width pressure (at `core_width` 32)
/// to split across cores so cross-core messages exist.
fn deep_logic() -> Module {
    let mut b = ModuleBuilder::new("deep");
    let a = b.input("a", 8);
    let c = b.input("b", 8);
    let mut x = b.add(a, c);
    for _ in 0..6 {
        x = b.add(x, a);
        x = b.xor(x, c);
    }
    b.output("y", x);
    b.finish().expect("deep fixture is valid")
}

/// A gated counter: sequential state with deferred write-back.
fn counter() -> Module {
    let mut b = ModuleBuilder::new("counter");
    let en = b.input("en", 1);
    let q = b.dff(8);
    let one = b.lit(1, 8);
    let next = b.add(q, one);
    let en = b.bit(en, 0);
    b.dff_enable(q, en);
    b.connect_dff(q, next);
    b.output("q", q);
    b.finish().expect("counter fixture is valid")
}

/// A 16×8 memory with both read kinds: RAM operand slots and the
/// async-read polyfill in one design.
fn ram_design() -> Module {
    let mut b = ModuleBuilder::new("ram");
    let wa = b.input("wa", 4);
    let wd = b.input("wd", 8);
    let we = b.input("we", 1);
    let ra = b.input("ra", 4);
    let mem = b.memory("m", 16, 8);
    let we = b.bit(we, 0);
    b.write_port(mem, wa, wd, we);
    let sq = b.read_port(mem, ra, ReadKind::Sync);
    let aq = b.read_port(mem, ra, ReadKind::Async);
    b.output("sq", sq);
    b.output("aq", aq);
    b.finish().expect("ram fixture is valid")
}

/// Narrow cores and several partitions across two stages force
/// multi-core placements, so message-level mutations have material to
/// bite on.
fn opts() -> CompileOptions {
    CompileOptions {
        core_width: 64,
        target_parts: 4,
        stages: 2,
        ..Default::default()
    }
}

/// The fixture set: three hand-written shapes plus fuzz designs.
fn fixtures() -> Vec<(String, Compiled)> {
    let mut out = Vec::new();
    for (name, m) in [
        ("deep", deep_logic()),
        ("counter", counter()),
        ("ram", ram_design()),
    ] {
        let c = compile(&m, &opts())
            .or_else(|_| {
                compile(
                    &m,
                    &CompileOptions {
                        core_width: 256,
                        ..opts()
                    },
                )
            })
            .unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
        out.push((name.to_string(), c));
    }
    for seed in [3u64, 11, 19] {
        let m = random_module(seed, &FuzzConfig::for_seed(seed));
        let o = CompileOptions {
            core_width: 64,
            target_parts: 4,
            ..Default::default()
        };
        let c = compile(&m, &o)
            .or_else(|_| {
                compile(
                    &m,
                    &CompileOptions {
                        core_width: 256,
                        ..o
                    },
                )
            })
            .unwrap_or_else(|e| panic!("fuzz seed {seed}: compile failed: {e}"));
        out.push((format!("fuzz{seed}"), c));
    }
    out
}

/// Baseline: every unmutated fixture passes all checks. (A verifier
/// that flags everything would trivially "kill" all mutants below.)
#[test]
fn unmutated_fixtures_verify_clean() {
    for (name, c) in fixtures() {
        let report = c.verify();
        assert!(
            report.passed(),
            "{name}: clean bitstream flagged:\n{}",
            report.summary()
        );
        // Every check family actually ran.
        assert_eq!(report.checks.len(), gem_isa::verify::CHECK_NAMES.len());
    }
}

/// The headline: every applicable (class, seed, fixture) mutant is
/// killed, and every class is exercised by at least three mutants.
#[test]
fn verifier_kills_every_mutant_class() {
    let fixtures = fixtures();
    let mut report_lines = Vec::new();
    for class in ALL_CLASSES {
        let mut kills = 0usize;
        let mut survivors: Vec<String> = Vec::new();
        for (name, c) in &fixtures {
            let ctx = gem_core::verify::context(&c.device, &c.io, Some(&c.programs));
            for seed in 1..=4u64 {
                let Some(mutant) = mutate(&c.bitstream, class, seed) else {
                    continue;
                };
                assert_ne!(
                    mutant, c.bitstream,
                    "{class} seed {seed} on {name}: mutator returned the original"
                );
                let vr = verify_bitstream(&mutant, &ctx);
                if vr.passed() {
                    survivors.push(format!("{name} seed {seed}"));
                } else {
                    kills += 1;
                }
            }
        }
        assert!(
            survivors.is_empty(),
            "class {class}: mutants SURVIVED verification: {survivors:?}"
        );
        assert!(
            kills >= 3,
            "class {class}: only {kills} mutants applied across the fixture set \
             (need ≥3 for meaningful coverage — extend the fixtures)"
        );
        report_lines.push(format!("{class}: {kills} mutants, {kills} killed"));
    }
    eprintln!("mutation kill matrix:\n  {}", report_lines.join("\n  "));
}

/// Program-free drill: the classes advertised as detectable without
/// placement metadata really are — the same mutants must die even when
/// `ctx.programs` is `None` (the `.gemb` package situation).
#[test]
fn program_free_classes_die_without_placement_metadata() {
    let fixtures = fixtures();
    for class in gem_isa::mutate::PROGRAM_FREE_CLASSES {
        let mut kills = 0usize;
        for (name, c) in &fixtures {
            let ctx = gem_core::verify::context(&c.device, &c.io, None);
            for seed in 1..=4u64 {
                let Some(mutant) = mutate(&c.bitstream, class, seed) else {
                    continue;
                };
                let vr = verify_bitstream(&mutant, &ctx);
                assert!(
                    !vr.passed(),
                    "{class} seed {seed} on {name}: survived a program-free verify"
                );
                kills += 1;
            }
        }
        assert!(
            kills >= 3,
            "class {class}: only {kills} program-free mutants"
        );
    }
}

/// The schedule-race classes must be killed *by the happens-before
/// checker itself* — the `schedule` check family flags them and
/// [`gem_isa::certify_schedule`] refuses to certify the mutant — not
/// merely by some other family happening to trip. This is the static
/// counterpart of the runtime-divergence argument: the race never needs
/// to manifest on hardware to be rejected.
#[test]
fn schedule_checker_kills_both_race_classes() {
    let fixtures = fixtures();
    for class in [
        MutationClass::MsgBeforeProducer,
        MutationClass::DualWriterSameSlot,
    ] {
        let mut kills = 0usize;
        for (name, c) in &fixtures {
            let ctx = gem_core::verify::context(&c.device, &c.io, None);
            assert!(
                gem_isa::certify_schedule(&c.bitstream, &ctx).is_ok(),
                "{name}: clean bitstream must certify"
            );
            for seed in 1..=4u64 {
                let Some(mutant) = mutate(&c.bitstream, class, seed) else {
                    continue;
                };
                let vr = verify_bitstream(&mutant, &ctx);
                let sched = vr.check("schedule").expect("schedule family ran");
                assert!(
                    sched.violations > 0,
                    "{class} seed {seed} on {name}: race not flagged by the \
                     schedule check itself ({})",
                    vr.summary()
                );
                let errs = gem_isa::certify_schedule(&mutant, &ctx)
                    .expect_err("racy mutant must not certify");
                assert!(errs.iter().all(|e| e.check == "schedule"));
                kills += 1;
            }
        }
        assert!(
            kills >= 3,
            "class {class}: only {kills} schedule-race mutants applied"
        );
    }
}

/// Merge-only classes (excluded from `PROGRAM_FREE_CLASSES`) must still
/// die when programs *are* present — otherwise the exclusion list is
/// hiding a verifier gap rather than a metadata limitation.
#[test]
fn merge_only_classes_die_with_placement_metadata() {
    let fixtures = fixtures();
    for class in [
        MutationClass::SwapLayers,
        MutationClass::PermRetarget,
        MutationClass::FoldFlip,
    ] {
        let mut kills = 0usize;
        for (name, c) in &fixtures {
            let ctx = gem_core::verify::context(&c.device, &c.io, Some(&c.programs));
            for seed in 1..=4u64 {
                let Some(mutant) = mutate(&c.bitstream, class, seed) else {
                    continue;
                };
                let vr = verify_bitstream(&mutant, &ctx);
                assert!(
                    !vr.passed(),
                    "{class} seed {seed} on {name}: survived with programs present"
                );
                kills += 1;
            }
        }
        assert!(kills >= 3, "class {class}: only {kills} mutants applied");
    }
}
