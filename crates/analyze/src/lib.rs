//! Whole-program static analyzer for the GEM flow.
//!
//! Two pass families, one diagnostic vocabulary:
//!
//! * **Netlist lints** ([`analyze_module`]) walk a [`gem_netlist::Module`]
//!   — validated or not — and report combinational loops (with a named
//!   cycle witness path), undriven and multiply-driven nets, port/cell
//!   width mismatches, dead cones, and constant-foldable cones. Frontend
//!   findings ([`gem_netlist::verilog::SourceLint`]) fold into the same
//!   report via [`analyze_with_lints`].
//! * **Schedule happens-before certification** (re-exported from
//!   [`gem_isa::schedule`]) proves a compiled bitstream race-free and
//!   issues the [`ScheduleCert`] stored with `.gemb` artifacts;
//!   [`diagnostics_from_violations`] converts verifier violations into
//!   the same [`Diagnostic`] shape for uniform CLI/server reporting.
//!
//! Every finding is a typed [`Diagnostic`] `{ code, severity, witness }`
//! with source names carried from the Verilog frontend, and every pass
//! records wall time ([`PassResult`]) so the compile flow's `analyze`
//! stage and the `gem_analyze_*` metric families (see
//! [`analyze_metrics`]) come for free.
//!
//! # Diagnostic codes
//!
//! | code       | severity | meaning |
//! |------------|----------|---------|
//! | `GEM-L001` | error    | combinational cycle (witness: the cycle path) |
//! | `GEM-L002` | error    | undriven net |
//! | `GEM-L003` | error    | multiply-driven net |
//! | `GEM-L004` | error    | cell/port width mismatch |
//! | `GEM-L005` | warning  | assignment truncates its right-hand side |
//! | `GEM-L006` | info     | dead cone (logic feeding no output or state) |
//! | `GEM-L007` | info     | constant-foldable cone |
//! | `GEM-S001` | error    | schedule happens-before violation |

#![deny(unsafe_code)]

mod passes;

use gem_netlist::verilog::SourceLint;
use gem_netlist::Module;
use gem_telemetry::{MetricFamily, MetricKind, MetricsSnapshot, Sample};
use std::fmt;
use std::time::Instant;

pub use gem_isa::schedule::{certify_schedule, ScheduleCert, CERT_VERSION};

/// How bad a finding is. `Error` blocks compilation; `Warning` fails
/// `--deny warnings`; `Info` is advisory (the optimizer handles it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: the flow handles it (e.g. synthesis prunes dead cones).
    Info,
    /// Suspicious but compilable; fails `--deny warnings` gates.
    Warning,
    /// The design cannot be compiled faithfully.
    Error,
}

impl Severity {
    /// Stable lowercase name (part of the JSON/metrics format).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One typed finding with a concrete witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`GEM-Lnnn` for netlist lints, `GEM-Snnn` for
    /// schedule findings); the catalog lives in `docs/ANALYZE.md`.
    pub code: &'static str,
    /// Severity tier.
    pub severity: Severity,
    /// Human-readable statement of the problem.
    pub message: String,
    /// The concrete evidence: named nets on a cycle, the offending net,
    /// the racing slot — never empty, always source-level when names
    /// survived the frontend.
    pub witness: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} (witness: {})",
            self.severity, self.code, self.message, self.witness
        )
    }
}

/// Timing and yield of one analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassResult {
    /// Pass name (stable; part of the metrics format).
    pub name: &'static str,
    /// Wall time spent, nanoseconds.
    pub wall_ns: u64,
    /// Diagnostics the pass produced.
    pub diagnostics: usize,
}

/// The complete analysis outcome: per-pass timings plus every finding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Passes executed, in order.
    pub passes: Vec<PassResult>,
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Findings at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Error-severity findings (these block compilation).
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// True when nothing at or above `floor` was found (the `--deny`
    /// gate: `clean(Severity::Warning)` is "zero warnings").
    pub fn clean(&self, floor: Severity) -> bool {
        self.diagnostics.iter().all(|d| d.severity < floor)
    }

    /// One-line outcome: counts per severity, first errors inline.
    pub fn summary(&self) -> String {
        let (e, w, i) = (
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        );
        if self.diagnostics.is_empty() {
            return format!("clean ({} passes)", self.passes.len());
        }
        let shown: Vec<String> = self.errors().take(2).map(|d| d.to_string()).collect();
        let detail = if shown.is_empty() {
            String::new()
        } else {
            format!(": {}", shown.join("; "))
        };
        format!("{e} error(s), {w} warning(s), {i} info(s){detail}")
    }

    fn run_pass(&mut self, name: &'static str, f: impl FnOnce(&mut Vec<Diagnostic>)) {
        let start = Instant::now();
        let before = self.diagnostics.len();
        f(&mut self.diagnostics);
        self.passes.push(PassResult {
            name,
            wall_ns: start.elapsed().as_nanos() as u64,
            diagnostics: self.diagnostics.len() - before,
        });
    }
}

/// Runs the netlist lint passes over a module.
///
/// The module may be unvalidated (e.g. straight from
/// [`gem_netlist::verilog::parse_with_lints`] or
/// [`gem_netlist::builder::ModuleBuilder::finish_raw`]): the analyzer
/// exists precisely to explain what validation would reject, with
/// witnesses, and to surface the advisory findings validation ignores.
pub fn analyze_module(m: &Module) -> AnalysisReport {
    analyze_with_lints(m, &[])
}

/// Like [`analyze_module`], folding frontend source lints (width
/// truncations the Verilog elaborator papered over) into the report.
pub fn analyze_with_lints(m: &Module, lints: &[SourceLint]) -> AnalysisReport {
    let mut r = AnalysisReport::default();
    r.run_pass("source", |d| passes::source_lints(lints, d));
    r.run_pass("drivers", |d| passes::drivers(m, d));
    r.run_pass("widths", |d| passes::widths(m, d));
    r.run_pass("loops", |d| passes::loops(m, d));
    r.run_pass("dead_cone", |d| passes::dead_cone(m, d));
    r.run_pass("const_cone", |d| passes::const_cone(m, d));
    r
}

/// Converts schedule/verify violations into [`Diagnostic`]s (code
/// `GEM-S001`), so happens-before findings render exactly like netlist
/// lints in the CLI table and JSON output.
pub fn diagnostics_from_violations(violations: &[gem_isa::verify::Violation]) -> Vec<Diagnostic> {
    violations
        .iter()
        .map(|v| Diagnostic {
            code: "GEM-S001",
            severity: Severity::Error,
            message: format!("schedule happens-before violation: {}", v.message),
            witness: match v.location {
                Some((s, c)) => format!("stage {s} core {c}"),
                None => "whole schedule".to_string(),
            },
        })
        .collect()
}

/// Converts an analysis report into the `gem_analyze_*` metric families
/// (documented in `docs/OBSERVABILITY.md`).
pub fn analyze_metrics(report: &AnalysisReport) -> MetricsSnapshot {
    let mut s = MetricsSnapshot::default();
    s.push_scalar(
        "gem_analyze_passes_total",
        "Static analysis passes executed",
        MetricKind::Counter,
        report.passes.len() as f64,
    );
    s.push_scalar(
        "gem_analyze_clean",
        "1 when the last analysis found no warnings or errors",
        MetricKind::Gauge,
        if report.clean(Severity::Warning) {
            1.0
        } else {
            0.0
        },
    );
    s.push(MetricFamily {
        name: "gem_analyze_diagnostics_total".to_string(),
        help: "Diagnostics found, by severity".to_string(),
        kind: MetricKind::Counter,
        samples: [Severity::Error, Severity::Warning, Severity::Info]
            .iter()
            .map(|&sev| Sample {
                labels: vec![("severity".to_string(), sev.name().to_string())],
                value: report.count(sev) as f64,
            })
            .collect(),
    });
    s.push(MetricFamily {
        name: "gem_analyze_pass_wall_nanos".to_string(),
        help: "Wall time spent per analysis pass".to_string(),
        kind: MetricKind::Gauge,
        samples: report
            .passes
            .iter()
            .map(|p| Sample {
                labels: vec![("pass".to_string(), p.name.to_string())],
                value: p.wall_ns as f64,
            })
            .collect(),
    });
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_netlist::ModuleBuilder;

    #[test]
    fn clean_module_is_clean() {
        let mut b = ModuleBuilder::new("clean");
        let a = b.input("a", 4);
        let q = b.dff(4);
        let x = b.xor(a, q);
        b.connect_dff(q, x);
        b.output("y", x);
        let m = b.finish().expect("valid");
        let r = analyze_module(&m);
        assert!(r.clean(Severity::Info), "{}", r.summary());
        assert_eq!(r.passes.len(), 6);
        assert!(r.summary().starts_with("clean"));
    }

    #[test]
    fn comb_loop_yields_l001_with_named_witness() {
        let mut b = ModuleBuilder::new("loopy");
        let a = b.input("a", 1);
        let f = b.forward(1);
        b.name_net(f, "fb");
        let x = b.and(f, a);
        b.name_net(x, "x");
        let n = b.not(x);
        b.drive(f, n);
        b.output("y", x);
        let m = b.finish_raw();
        let r = analyze_module(&m);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == "GEM-L001")
            .expect("loop diagnosed");
        assert_eq!(d.severity, Severity::Error);
        assert!(
            d.witness.contains("fb") && d.witness.contains("x"),
            "witness names the nets on the cycle: {}",
            d.witness
        );
    }

    #[test]
    fn undriven_and_multi_driven_are_l002_l003() {
        let mut b = ModuleBuilder::new("drv");
        let a = b.input("a", 1);
        let dangling = b.forward(1);
        b.name_net(dangling, "dangling");
        let twice = b.forward(1);
        b.drive(twice, a);
        b.drive(twice, a);
        let x = b.and(dangling, twice);
        b.output("y", x);
        let m = b.finish_raw();
        let r = analyze_module(&m);
        let codes: Vec<&str> = r.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"GEM-L002"), "{codes:?}");
        assert!(codes.contains(&"GEM-L003"), "{codes:?}");
    }

    #[test]
    fn dead_and_const_cones_are_advisory() {
        let mut b = ModuleBuilder::new("cones");
        let a = b.input("a", 4);
        let q = b.dff(4);
        b.connect_dff(q, a);
        b.output("y", q);
        // Dead: computed, feeds nothing.
        let dead = b.add(a, q);
        b.name_net(dead, "unused_sum");
        // Const-foldable: all-constant operands.
        let c1 = b.lit(3, 4);
        let c2 = b.lit(5, 4);
        let folded = b.add(c1, c2);
        b.name_net(folded, "three_plus_five");
        b.output("z", folded);
        let m = b.finish().expect("valid");
        let r = analyze_module(&m);
        assert!(r.clean(Severity::Warning), "{}", r.summary());
        let dead = r
            .diagnostics
            .iter()
            .find(|d| d.code == "GEM-L006")
            .expect("dead cone found");
        assert_eq!(dead.severity, Severity::Info);
        assert!(dead.witness.contains("unused_sum"), "{}", dead.witness);
        let cc = r
            .diagnostics
            .iter()
            .find(|d| d.code == "GEM-L007")
            .expect("const cone found");
        assert!(cc.witness.contains("three_plus_five"), "{}", cc.witness);
    }

    #[test]
    fn source_lints_become_l005_warnings() {
        let (m, lints) = gem_netlist::verilog::parse_with_lints(
            "module t(input [7:0] a, output [3:0] y);\n assign y = a;\nendmodule",
        )
        .expect("parses");
        let r = analyze_with_lints(&m, &lints);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == "GEM-L005")
            .expect("truncation warned");
        assert_eq!(d.severity, Severity::Warning);
        assert!(!r.clean(Severity::Warning));
        assert!(r.clean(Severity::Error));
    }

    #[test]
    fn metrics_cover_every_pass_and_severity() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 1);
        b.output("y", a);
        let m = b.finish().expect("valid");
        let r = analyze_module(&m);
        let snap = analyze_metrics(&r);
        assert_eq!(snap.family("gem_analyze_clean").unwrap().total(), 1.0);
        assert_eq!(
            snap.family("gem_analyze_pass_wall_nanos")
                .unwrap()
                .samples
                .len(),
            r.passes.len()
        );
        assert_eq!(
            snap.family("gem_analyze_diagnostics_total")
                .unwrap()
                .samples
                .len(),
            3
        );
    }

    #[test]
    fn violation_conversion_carries_location_witness() {
        let v = vec![gem_isa::verify::Violation {
            check: "schedule",
            location: Some((1, 2)),
            message: "global 7 has 2 racing writers".into(),
        }];
        let d = diagnostics_from_violations(&v);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "GEM-S001");
        assert!(d[0].witness.contains("stage 1 core 2"));
    }
}
