//! The netlist lint passes.
//!
//! Each pass walks the [`Module`] independently and reports *every*
//! finding (unlike validation, which stops at the first): the analyzer's
//! job is a complete explanation with witnesses, not a pass/fail bit.

use crate::{Diagnostic, Severity};
use gem_netlist::verilog::SourceLint;
use gem_netlist::{CellKind, Module, NetId, ReadKind, Unary};
use std::collections::HashMap;

/// A net's user-facing label: the source name when the frontend carried
/// one, the `n<id>` fallback otherwise.
fn label(m: &Module, id: NetId) -> String {
    match &m.net(id).name {
        Some(name) => format!("{id} ({name:?})"),
        None => id.to_string(),
    }
}

fn diag(
    d: &mut Vec<Diagnostic>,
    code: &'static str,
    severity: Severity,
    message: String,
    witness: String,
) {
    d.push(Diagnostic {
        code,
        severity,
        message,
        witness,
    });
}

/// Folds frontend findings into the report (`GEM-L005`).
pub fn source_lints(lints: &[SourceLint], d: &mut Vec<Diagnostic>) {
    for l in lints {
        match l {
            SourceLint::WidthTruncation { target, from, to } => diag(
                d,
                "GEM-L005",
                Severity::Warning,
                format!("assignment truncates a {from}-bit value to {to} bits"),
                format!("target {target:?} ({from} -> {to} bits)"),
            ),
        }
    }
}

/// Undriven (`GEM-L002`) and multiply-driven (`GEM-L003`) nets.
pub fn drivers(m: &Module, d: &mut Vec<Diagnostic>) {
    let mut count = vec![0u32; m.nets().len()];
    for p in m.inputs() {
        count[p.net.0 as usize] += 1;
    }
    for c in m.cells() {
        count[c.out.0 as usize] += 1;
    }
    for mem in m.memories() {
        for rp in &mem.read_ports {
            count[rp.data.0 as usize] += 1;
        }
    }
    for (i, &n) in count.iter().enumerate() {
        let id = NetId(i as u32);
        if n == 0 {
            diag(
                d,
                "GEM-L002",
                Severity::Error,
                format!("net {} has no driver", label(m, id)),
                label(m, id),
            );
        } else if n > 1 {
            diag(
                d,
                "GEM-L003",
                Severity::Error,
                format!("net {} has {n} drivers (exactly one allowed)", label(m, id)),
                label(m, id),
            );
        }
    }
}

/// Cell and memory-port width mismatches (`GEM-L004`). Mirrors the
/// width rules `gem_netlist::validate` enforces, but reports every
/// offender instead of the first.
pub fn widths(m: &Module, d: &mut Vec<Diagnostic>) {
    let w = |n: NetId| m.width(n);
    let mut bad = |out: NetId, what: String| {
        diag(
            d,
            "GEM-L004",
            Severity::Error,
            format!("width mismatch at {}: {what}", label(m, out)),
            label(m, out),
        );
    };
    for c in m.cells() {
        let ow = w(c.out);
        match &c.kind {
            CellKind::Const { value } => {
                if value.width() != ow {
                    bad(c.out, format!("const width {} vs out {ow}", value.width()));
                }
            }
            CellKind::Unary { op, a } => match op {
                Unary::Not | Unary::Neg => {
                    if w(*a) != ow {
                        bad(c.out, format!("unary in {} vs out {ow}", w(*a)));
                    }
                }
                _ => {
                    if ow != 1 {
                        bad(c.out, format!("reduction out width {ow} != 1"));
                    }
                }
            },
            CellKind::Binary { op, a, b } => {
                use gem_netlist::Binary as B;
                match op {
                    B::Eq | B::Ult => {
                        if w(*a) != w(*b) || ow != 1 {
                            bad(c.out, format!("cmp widths {} vs {} out {ow}", w(*a), w(*b)));
                        }
                    }
                    B::Shl | B::Lshr => {
                        if w(*a) != ow {
                            bad(c.out, format!("shift in {} vs out {ow}", w(*a)));
                        }
                    }
                    _ => {
                        if w(*a) != w(*b) || w(*a) != ow {
                            bad(
                                c.out,
                                format!("binary widths {} vs {} out {ow}", w(*a), w(*b)),
                            );
                        }
                    }
                }
            }
            CellKind::Mux { sel, t, f } => {
                if w(*sel) != 1 || w(*t) != w(*f) || w(*t) != ow {
                    bad(
                        c.out,
                        format!("mux sel {} t {} f {} out {ow}", w(*sel), w(*t), w(*f)),
                    );
                }
            }
            CellKind::Slice { a, lo } => {
                if lo + ow > w(*a) {
                    bad(
                        c.out,
                        format!("slice [{lo},{}) of width {}", lo + ow, w(*a)),
                    );
                }
            }
            CellKind::Concat { parts } => {
                let sum: u32 = parts.iter().map(|&p| w(p)).sum();
                if sum != ow {
                    bad(c.out, format!("concat parts {sum} vs out {ow}"));
                }
            }
            CellKind::Dff {
                d: dn,
                init,
                enable,
                reset,
            } => {
                if w(*dn) != ow || init.width() != ow {
                    bad(
                        c.out,
                        format!("dff d {} init {} out {ow}", w(*dn), init.width()),
                    );
                }
                for (what, n) in [("enable", enable), ("reset", reset)] {
                    if let Some(n) = n {
                        if w(*n) != 1 {
                            bad(c.out, format!("dff {what} width {}", w(*n)));
                        }
                    }
                }
            }
        }
    }
    for mem in m.memories() {
        let port = |d: &mut Vec<Diagnostic>, kind: &str, data: NetId, width: u32| {
            if width != mem.width {
                diag(
                    d,
                    "GEM-L004",
                    Severity::Error,
                    format!(
                        "memory {:?} {kind} width {width} vs word width {}",
                        mem.name, mem.width
                    ),
                    label(m, data),
                );
            }
        };
        for rp in &mem.read_ports {
            port(d, "read data", rp.data, w(rp.data));
        }
        for wp in &mem.write_ports {
            port(d, "write data", wp.data, w(wp.data));
            if w(wp.enable) != 1 {
                diag(
                    d,
                    "GEM-L004",
                    Severity::Error,
                    format!(
                        "memory {:?} write enable width {} != 1",
                        mem.name,
                        w(wp.enable)
                    ),
                    label(m, wp.enable),
                );
            }
        }
    }
}

/// Combinational cycle detection with a named witness path
/// (`GEM-L001`). Reports the first cycle found — one loop is enough to
/// make the design unlevelizable, and its witness names every net on it.
pub fn loops(m: &Module, d: &mut Vec<Diagnostic>) {
    // net -> combinational fan-in (driving cell inputs, or the address
    // of an asynchronous memory read).
    let mut driver: Vec<Option<usize>> = vec![None; m.nets().len()];
    for (i, c) in m.cells().iter().enumerate() {
        if !matches!(c.kind, CellKind::Dff { .. }) {
            driver[c.out.0 as usize] = Some(i);
        }
    }
    let mut async_reads: HashMap<u32, NetId> = HashMap::new();
    for mem in m.memories() {
        for rp in &mem.read_ports {
            if rp.kind == ReadKind::Async {
                async_reads.insert(rp.data.0, rp.addr);
            }
        }
    }
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; m.nets().len()];
    for start in 0..m.nets().len() as u32 {
        if color[start as usize] != WHITE {
            continue;
        }
        let mut stack: Vec<(u32, usize)> = vec![(start, 0)];
        color[start as usize] = GRAY;
        while let Some(&mut (net, ref mut child)) = stack.last_mut() {
            let fanins: Vec<NetId> = if let Some(ci) = driver[net as usize] {
                m.cell_inputs(&m.cells()[ci])
            } else if let Some(&addr) = async_reads.get(&net) {
                vec![addr]
            } else {
                vec![]
            };
            if *child < fanins.len() {
                let next = fanins[*child];
                *child += 1;
                match color[next.0 as usize] {
                    WHITE => {
                        color[next.0 as usize] = GRAY;
                        stack.push((next.0, 0));
                    }
                    GRAY => {
                        let pos = stack
                            .iter()
                            .position(|&(n, _)| n == next.0)
                            .expect("gray net is on the DFS path");
                        let cycle: Vec<String> = stack[pos..]
                            .iter()
                            .map(|&(n, _)| label(m, NetId(n)))
                            .collect();
                        let first = cycle[0].clone();
                        diag(
                            d,
                            "GEM-L001",
                            Severity::Error,
                            format!(
                                "combinational cycle of {} net(s): the design \
                                 cannot be levelized",
                                cycle.len()
                            ),
                            format!("{} -> {first}", cycle.join(" -> ")),
                        );
                        return;
                    }
                    _ => {}
                }
            } else {
                color[net as usize] = BLACK;
                stack.pop();
            }
        }
    }
}

/// Dead cones (`GEM-L006`): cells whose output transitively feeds no
/// primary output and no live state element. Advisory — synthesis
/// prunes these — but a large dead cone usually means a wiring mistake.
pub fn dead_cone(m: &Module, d: &mut Vec<Diagnostic>) {
    let mut live = vec![false; m.nets().len()];
    let mut worklist: Vec<NetId> = m.outputs().map(|p| p.net).collect();
    // net -> driving cell index.
    let mut driver: Vec<Option<usize>> = vec![None; m.nets().len()];
    for (i, c) in m.cells().iter().enumerate() {
        driver[c.out.0 as usize] = Some(i);
    }
    // net -> memory whose read port produces it.
    let mut read_mem: HashMap<u32, usize> = HashMap::new();
    for (mi, mem) in m.memories().iter().enumerate() {
        for rp in &mem.read_ports {
            read_mem.insert(rp.data.0, mi);
        }
    }
    let mut mem_live = vec![false; m.memories().len()];
    while let Some(n) = worklist.pop() {
        if std::mem::replace(&mut live[n.0 as usize], true) {
            continue;
        }
        if let Some(ci) = driver[n.0 as usize] {
            worklist.extend(m.cell_inputs(&m.cells()[ci]));
        }
        if let Some(&mi) = read_mem.get(&n.0) {
            // A live read makes the whole memory live: its write ports
            // (and every read address) feed observable state.
            if !std::mem::replace(&mut mem_live[mi], true) {
                let mem = &m.memories()[mi];
                for rp in &mem.read_ports {
                    worklist.push(rp.addr);
                }
                for wp in &mem.write_ports {
                    worklist.extend([wp.addr, wp.data, wp.enable]);
                }
            }
        }
    }
    let dead: Vec<NetId> = m
        .cells()
        .iter()
        .filter(|c| !live[c.out.0 as usize])
        .map(|c| c.out)
        .collect();
    if dead.is_empty() {
        return;
    }
    let named: Vec<String> = dead.iter().take(4).map(|&n| label(m, n)).collect();
    let more = dead.len().saturating_sub(4);
    let tail = if more > 0 {
        format!(" (+{more} more)")
    } else {
        String::new()
    };
    diag(
        d,
        "GEM-L006",
        Severity::Info,
        format!(
            "{} cell(s) feed no output or live state (dead cone; synthesis \
             will prune them)",
            dead.len()
        ),
        format!("{}{tail}", named.join(", ")),
    );
}

/// Constant-foldable cones (`GEM-L007`): combinational cells whose
/// entire transitive fan-in is constant. Advisory — the E-AIG folds
/// them — but they often indicate disabled or vestigial logic.
pub fn const_cone(m: &Module, d: &mut Vec<Diagnostic>) {
    let mut is_const = vec![false; m.nets().len()];
    // Fixpoint over the (acyclic in well-formed designs) cell list; the
    // iteration bound keeps this terminating even on cyclic input.
    let mut changed = true;
    let mut rounds = 0usize;
    while changed && rounds <= m.cells().len() {
        changed = false;
        rounds += 1;
        for c in m.cells() {
            if is_const[c.out.0 as usize] {
                continue;
            }
            let foldable = match &c.kind {
                CellKind::Const { .. } => true,
                CellKind::Dff { .. } => false,
                _ => {
                    let ins = m.cell_inputs(c);
                    !ins.is_empty() && ins.iter().all(|n| is_const[n.0 as usize])
                }
            };
            if foldable {
                is_const[c.out.0 as usize] = true;
                changed = true;
            }
        }
    }
    // Report non-trivial foldable cells: constant drivers themselves are
    // literals, not findings.
    let foldable: Vec<NetId> = m
        .cells()
        .iter()
        .filter(|c| !matches!(c.kind, CellKind::Const { .. }) && is_const[c.out.0 as usize])
        .map(|c| c.out)
        .collect();
    if foldable.is_empty() {
        return;
    }
    let named: Vec<String> = foldable.iter().take(4).map(|&n| label(m, n)).collect();
    let more = foldable.len().saturating_sub(4);
    let tail = if more > 0 {
        format!(" (+{more} more)")
    } else {
        String::new()
    };
    diag(
        d,
        "GEM-L007",
        Severity::Info,
        format!(
            "{} cell(s) compute a compile-time constant (constant-foldable \
             cone)",
            foldable.len()
        ),
        format!("{}{tail}", named.join(", ")),
    );
}
