//! Differential fuzzing: randomly generated designs, golden E-AIG
//! interpreter vs the virtual GPU across the full execution matrix.
//!
//! For every seed the suite builds a random module
//! ([`gem_sim::random_module`]), compiles it, and runs the same random
//! stimulus through the golden [`EaigSim`] and **twelve** `GemSimulator`
//! configurations in lockstep — every point of
//!
//! ```text
//! {interpreted, compiled} × {1, 4} threads × {1, 32, 64} lanes
//! ```
//!
//! asserting, every cycle:
//!
//! * bit-exact outputs against the golden model (lane 0 of batch
//!   sessions replays the golden stimulus),
//! * bit-exact noise-lane outputs across every batch configuration
//!   (lanes 1..64 carry per-lane noise streams, identical across sims;
//!   lanes a narrower sim doesn't run are compared only among the sims
//!   that do run them),
//! * identical architectural counters within each lane-count group
//!   (RAM-phase counters are lane-dependent, so the 1-, 32- and 64-lane
//!   groups are compared separately) — the determinism contract for
//!   both the thread knob and the backend knob,
//! * the PR-1 counter-reconciliation invariants on the merged breakdown.
//!
//! `fuzz_smoke` (a small seed range) runs in the tier-1 suite; the full
//! ≥200-design sweep is `fuzz_sweep` behind `--ignored`:
//!
//! ```text
//! cargo test -p gem-sim --test differential_fuzz -- --ignored
//! ```
//!
//! A failure message always contains the seed and the diverging
//! configuration, which reproduce the design, the stimulus, and the
//! divergence deterministically.

use gem_core::{compile, CompileOptions, ExecBackend, GemSimulator};
use gem_sim::{random_module, EaigSim, FuzzConfig, FuzzRng};

/// Salt for the noise streams driving lanes 1..64 of batch sims (lane 0
/// replays the golden stimulus).
const NOISE_SALT: u64 = 0xBADC_AB1E;

/// One point of the execution matrix.
struct MatrixSim {
    sim: GemSimulator,
    backend: ExecBackend,
    threads: usize,
    lanes: u32,
}

impl MatrixSim {
    fn describe(&self) -> String {
        format!(
            "{} backend, {} thread(s), {} lane(s)",
            self.backend.name(),
            self.threads,
            self.lanes
        )
    }
}

/// Runs one seed through the golden model and the full backend ×
/// threads × lanes matrix. Returns the pool tasks the parallel engines
/// dispatched, so callers can assert the sweep really fanned out
/// (stages with a single core bypass the pool, and a 256-bit core
/// swallows every fuzz design whole — 64 bits is the widest core that
/// still forces multi-partition placements on this corpus).
fn run_differential(seed: u64, cycles: u64) -> u64 {
    run_differential_with(seed, cycles, &FuzzConfig::for_seed(seed))
}

/// Same as [`run_differential`] but with an explicit generator config,
/// so suites can pick a shaped corpus (e.g. RAM-heavy).
fn run_differential_with(seed: u64, cycles: u64, cfg: &FuzzConfig) -> u64 {
    let m = random_module(seed, cfg);
    let opts = CompileOptions {
        core_width: 64,
        target_parts: 4,
        ..Default::default()
    };
    // A few seeds need more live state than a 64-bit core holds; widen
    // for those rather than dropping them from the corpus.
    let compiled = compile(&m, &opts).or_else(|_| {
        compile(
            &m,
            &CompileOptions {
                core_width: 256,
                ..opts
            },
        )
    });
    let compiled = compiled.unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}"));
    // Every fuzz compile goes through the static bitstream verifier
    // (`CompileOptions::default` enables it); a compile that skipped it
    // would silently weaken the whole suite.
    assert!(
        compiled.report.verified,
        "seed {seed}: compile skipped bitstream verification"
    );
    let mut gold = EaigSim::new(&compiled.eaig);
    let mut sims = Vec::new();
    for backend in [ExecBackend::Interpreted, ExecBackend::Compiled] {
        for threads in [1usize, 4] {
            for lanes in [1u32, 32, 64] {
                let mut sim =
                    GemSimulator::new(&compiled).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                sim.set_threads(threads);
                sim.set_backend(backend);
                sim.set_lanes(lanes)
                    .unwrap_or_else(|e| panic!("seed {seed}: set_lanes({lanes}): {e}"));
                sims.push(MatrixSim {
                    sim,
                    backend,
                    threads,
                    lanes,
                });
            }
        }
    }

    let n_in = compiled.eaig.inputs().len();
    let mut stim = FuzzRng::new(seed ^ 0x5717_B0B5);
    let mut noise: Vec<FuzzRng> = (1..GemSimulator::MAX_LANES as u64)
        .map(|lane| FuzzRng::new(seed ^ NOISE_SALT ^ lane.wrapping_mul(0x9E37_79B9)))
        .collect();
    for cycle in 0..cycles {
        // Golden stimulus: lane 0 everywhere (scalar sims broadcast).
        let mut bitvec = vec![false; n_in];
        for p in m.inputs() {
            let w = m.width(p.net);
            let v = stim.bits(w);
            for s in sims.iter_mut() {
                if s.lanes == 1 {
                    s.sim.set_input(&p.name, v.clone());
                } else {
                    s.sim.set_input_lane(&p.name, 0, v.clone());
                }
            }
            let pb = compiled
                .eaig_inputs
                .iter()
                .find(|pb| pb.name == p.name)
                .unwrap_or_else(|| panic!("seed {seed}: input {} unmapped", p.name));
            for i in 0..w {
                bitvec[pb.lsb_index + i as usize] = v.bit(i);
            }
        }
        // Noise lanes: one draw per (lane, input) per cycle, applied to
        // every batch sim that runs the lane, so active lanes are
        // comparable bit-for-bit across sims of the same (or wider)
        // lane count.
        for lane in 1..GemSimulator::MAX_LANES {
            for p in m.inputs() {
                let v = noise[lane as usize - 1].bits(m.width(p.net));
                for s in sims.iter_mut().filter(|s| s.lanes > lane) {
                    s.sim.set_input_lane(&p.name, lane, v.clone());
                }
            }
        }
        for (i, &v) in bitvec.iter().enumerate() {
            gold.set_input(i, v);
        }
        gold.eval();
        for s in sims.iter_mut() {
            s.sim.step();
        }
        for pb in compiled.eaig_outputs.iter() {
            let want: Vec<bool> = (0..pb.width)
                .map(|i| gold.output(pb.lsb_index + i as usize))
                .collect();
            for s in sims.iter() {
                let v = if s.lanes == 1 {
                    s.sim.output(&pb.name)
                } else {
                    s.sim.output_lane(&pb.name, 0)
                };
                for (i, &w) in want.iter().enumerate() {
                    assert_eq!(
                        v.bit(i as u32),
                        w,
                        "seed {seed} cycle {cycle}: {} diverged from golden on {}[{i}]",
                        s.describe(),
                        pb.name
                    );
                }
            }
        }
        // Noise lanes must agree across every batch configuration that
        // runs them: the backend-equivalence claim covers all 64
        // stimulus streams, not just the golden-checked lane 0. Lanes
        // 1..32 are cross-checked over every batch sim; lanes 32..64
        // only among the full-width (64-lane) sims.
        for pb in compiled.eaig_outputs.iter() {
            for lane in 1..GemSimulator::MAX_LANES {
                let group: Vec<&MatrixSim> = sims.iter().filter(|s| s.lanes > lane).collect();
                assert!(group.len() >= 4, "lane {lane}: matrix lost its sims");
                let want = group[0].sim.output_lane(&pb.name, lane);
                for s in &group[1..] {
                    assert_eq!(
                        s.sim.output_lane(&pb.name, lane),
                        want,
                        "seed {seed} cycle {cycle}: {} diverged from {} on lane {lane} of {}",
                        s.describe(),
                        group[0].describe(),
                        pb.name
                    );
                }
            }
        }
        // Determinism contract: merged counters identical across
        // backends and thread counts, every cycle — within each lane
        // group (the RAM phase touches every active lane, so 32-lane
        // counters legitimately differ from 1-lane ones).
        for lanes in [1u32, 32, 64] {
            let group: Vec<&MatrixSim> = sims.iter().filter(|s| s.lanes == lanes).collect();
            let want = group[0].sim.counters();
            for s in &group[1..] {
                assert_eq!(
                    s.sim.counters(),
                    want,
                    "seed {seed} cycle {cycle}: counters diverged between {} and {}",
                    s.describe(),
                    group[0].describe()
                );
            }
        }
        gold.step();
    }

    // PR-1 reconciliation invariants on the merged breakdown, plus
    // breakdown equality across the whole 1-lane group.
    let scalar: Vec<&MatrixSim> = sims.iter().filter(|s| s.lanes == 1).collect();
    let bd = scalar[0].sim.breakdown();
    for s in &scalar[1..] {
        assert_eq!(
            s.sim.breakdown(),
            bd,
            "seed {seed}: breakdowns diverged between {} and {}",
            s.describe(),
            scalar[0].describe()
        );
    }
    let sum = bd.partition_sum();
    assert_eq!(sum.alu_ops, bd.total.alu_ops, "seed {seed}: alu_ops");
    assert_eq!(
        sum.blocks_run, bd.total.blocks_run,
        "seed {seed}: blocks_run"
    );
    assert_eq!(
        sum.shared_accesses, bd.total.shared_accesses,
        "seed {seed}: shared_accesses"
    );
    assert_eq!(
        sum.block_syncs, bd.total.block_syncs,
        "seed {seed}: block_syncs"
    );
    assert!(
        sum.global_bytes <= bd.total.global_bytes,
        "seed {seed}: partitions attributed more global traffic than the device moved"
    );
    sims.iter()
        .filter(|s| s.threads > 1)
        .map(|s| s.sim.exec_stats().parallel_tasks)
        .sum()
}

/// Tier-1 smoke subset: a couple dozen random designs, short stimuli,
/// full backend × threads × lanes matrix per seed. The corpus must
/// contain at least one multi-core placement, or the "parallel" engine
/// under test silently degrades to serial.
#[test]
fn fuzz_smoke() {
    let mut pool_tasks = 0;
    for seed in 0..25 {
        pool_tasks += run_differential(seed, 12);
    }
    assert!(pool_tasks > 0, "no seed engaged the parallel engine");
}

/// Tier-1 RAM smoke: 15 seeds from the RAM-heavy corpus, where every
/// design has at least one memory and every memory carries both a sync
/// and an async read port. The plain corpus only hits memories
/// probabilistically; this subset pins both RAM read paths (and their
/// verifier checks) in every run — under both backends.
#[test]
fn ram_smoke() {
    for seed in 0..15 {
        let cfg = FuzzConfig::ram_heavy(seed);
        assert!(cfg.mems >= 1 && cfg.dual_read, "ram_heavy lost its RAMs");
        run_differential_with(seed, 10, &cfg);
    }
}

/// Full sweep: ≥200 random designs × multi-cycle stimuli × the full
/// execution matrix. Run with `--ignored` (CI runs it in the
/// backend-determinism job).
#[test]
#[ignore = "full sweep; run with --ignored"]
fn fuzz_sweep() {
    let mut pool_tasks = 0;
    for seed in 0..220 {
        pool_tasks += run_differential(seed, 24);
    }
    assert!(pool_tasks > 0, "no seed engaged the parallel engine");
}
