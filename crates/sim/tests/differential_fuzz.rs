//! Differential fuzzing: randomly generated designs, golden E-AIG
//! interpreter vs the virtual GPU at 1 and N threads.
//!
//! For every seed the suite builds a random module
//! ([`gem_sim::random_module`]), compiles it, and runs the same random
//! stimulus through three engines in lockstep:
//!
//! * [`EaigSim`] — the workspace's ground truth,
//! * `GemSimulator` with the serial execution engine,
//! * `GemSimulator` with a 4-thread parallel engine,
//!
//! asserting bit-exact outputs every cycle, identical architectural
//! counters between the two GEM engines (the ISSUE's determinism
//! contract), and the PR-1 counter-reconciliation invariants on the
//! merged breakdown.
//!
//! `fuzz_smoke` (a small seed range) runs in the tier-1 suite; the full
//! ≥200-design sweep is `fuzz_sweep` behind `--ignored`:
//!
//! ```text
//! cargo test -p gem-sim --test differential_fuzz -- --ignored
//! ```
//!
//! A failure message always contains the seed, which reproduces the
//! design, the stimulus, and the divergence deterministically.

use gem_core::{compile, CompileOptions, GemSimulator};
use gem_sim::{random_module, EaigSim, FuzzConfig, FuzzRng};

/// Runs one seed through all three engines. Returns the pool tasks the
/// parallel engine dispatched, so callers can assert the sweep really
/// fanned out (stages with a single core bypass the pool, and a 256-bit
/// core swallows every fuzz design whole — 64 bits is the widest core
/// that still forces multi-partition placements on this corpus).
fn run_differential(seed: u64, cycles: u64) -> u64 {
    run_differential_with(seed, cycles, &FuzzConfig::for_seed(seed))
}

/// Same as [`run_differential`] but with an explicit generator config,
/// so suites can pick a shaped corpus (e.g. RAM-heavy).
fn run_differential_with(seed: u64, cycles: u64, cfg: &FuzzConfig) -> u64 {
    let m = random_module(seed, cfg);
    let opts = CompileOptions {
        core_width: 64,
        target_parts: 4,
        ..Default::default()
    };
    // A few seeds need more live state than a 64-bit core holds; widen
    // for those rather than dropping them from the corpus.
    let compiled = compile(&m, &opts).or_else(|_| {
        compile(
            &m,
            &CompileOptions {
                core_width: 256,
                ..opts
            },
        )
    });
    let compiled = compiled.unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}"));
    // Every fuzz compile goes through the static bitstream verifier
    // (`CompileOptions::default` enables it); a compile that skipped it
    // would silently weaken the whole suite.
    assert!(
        compiled.report.verified,
        "seed {seed}: compile skipped bitstream verification"
    );
    let mut gold = EaigSim::new(&compiled.eaig);
    let mut gem1 = GemSimulator::new(&compiled).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    let mut gemn = GemSimulator::new(&compiled).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    gem1.set_threads(1);
    gemn.set_threads(4);

    let n_in = compiled.eaig.inputs().len();
    let mut stim = FuzzRng::new(seed ^ 0x5717_B0B5);
    for cycle in 0..cycles {
        let mut bitvec = vec![false; n_in];
        for p in m.inputs() {
            let w = m.width(p.net);
            let v = stim.bits(w);
            gem1.set_input(&p.name, v.clone());
            gemn.set_input(&p.name, v.clone());
            let pb = compiled
                .eaig_inputs
                .iter()
                .find(|pb| pb.name == p.name)
                .unwrap_or_else(|| panic!("seed {seed}: input {} unmapped", p.name));
            for i in 0..w {
                bitvec[pb.lsb_index + i as usize] = v.bit(i);
            }
        }
        for (i, &v) in bitvec.iter().enumerate() {
            gold.set_input(i, v);
        }
        gold.eval();
        gem1.step();
        gemn.step();
        for pb in compiled.eaig_outputs.iter() {
            let v1 = gem1.output(&pb.name);
            let vn = gemn.output(&pb.name);
            for i in 0..pb.width {
                let want = gold.output(pb.lsb_index + i as usize);
                assert_eq!(
                    v1.bit(i),
                    want,
                    "seed {seed} cycle {cycle}: serial GEM diverged from golden on {}[{i}]",
                    pb.name
                );
                assert_eq!(
                    vn.bit(i),
                    want,
                    "seed {seed} cycle {cycle}: parallel GEM diverged from golden on {}[{i}]",
                    pb.name
                );
            }
        }
        // Determinism contract: merged counters identical 1 vs N threads,
        // every cycle (not just at the end).
        assert_eq!(
            gem1.counters(),
            gemn.counters(),
            "seed {seed} cycle {cycle}: counters diverged between engines"
        );
        gold.step();
    }

    // PR-1 reconciliation invariants on the merged parallel breakdown.
    let bd = gemn.breakdown();
    assert_eq!(bd, gem1.breakdown(), "seed {seed}: breakdowns diverged");
    let sum = bd.partition_sum();
    assert_eq!(sum.alu_ops, bd.total.alu_ops, "seed {seed}: alu_ops");
    assert_eq!(
        sum.blocks_run, bd.total.blocks_run,
        "seed {seed}: blocks_run"
    );
    assert_eq!(
        sum.shared_accesses, bd.total.shared_accesses,
        "seed {seed}: shared_accesses"
    );
    assert_eq!(
        sum.block_syncs, bd.total.block_syncs,
        "seed {seed}: block_syncs"
    );
    assert!(
        sum.global_bytes <= bd.total.global_bytes,
        "seed {seed}: partitions attributed more global traffic than the device moved"
    );
    gemn.exec_stats().parallel_tasks
}

/// Tier-1 smoke subset: a couple dozen random designs, short stimuli.
/// The corpus must contain at least one multi-core placement, or the
/// "parallel" engine under test silently degrades to serial.
#[test]
fn fuzz_smoke() {
    let mut pool_tasks = 0;
    for seed in 0..24 {
        pool_tasks += run_differential(seed, 12);
    }
    assert!(pool_tasks > 0, "no seed engaged the parallel engine");
}

/// Tier-1 RAM smoke: 15 seeds from the RAM-heavy corpus, where every
/// design has at least one memory and every memory carries both a sync
/// and an async read port. The plain corpus only hits memories
/// probabilistically; this subset pins both RAM read paths (and their
/// verifier checks) in every run.
#[test]
fn ram_smoke() {
    for seed in 0..15 {
        let cfg = FuzzConfig::ram_heavy(seed);
        assert!(cfg.mems >= 1 && cfg.dual_read, "ram_heavy lost its RAMs");
        run_differential_with(seed, 10, &cfg);
    }
}

/// Full sweep: ≥200 random designs × multi-cycle stimuli. Run with
/// `--ignored` (CI runs it in the parallel-determinism job).
#[test]
#[ignore = "full sweep; run with --ignored"]
fn fuzz_sweep() {
    let mut pool_tasks = 0;
    for seed in 0..220 {
        pool_tasks += run_differential(seed, 24);
    }
    assert!(pool_tasks > 0, "no seed engaged the parallel engine");
}
