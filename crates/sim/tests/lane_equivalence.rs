//! Differential lane-equivalence fuzzing: a full-width 64-lane batch
//! must be bit-identical, per lane, to 64 independent single-lane runs.
//!
//! For every seed the suite builds a random module
//! ([`gem_sim::random_module`]), compiles it once, and derives 64
//! *different* stimulus streams from the seed (one per lane, each with
//! its own `FuzzRng`). The same [`gem_sim::LaneBatch`] then drives:
//!
//! * one `GemSimulator` with `set_lanes(64)` — the lane-batched engine,
//! * 64 independent single-lane `GemSimulator`s — the reference bank,
//!
//! through the engine-agnostic [`gem_sim::LaneTarget`] surface, and
//! [`gem_sim::lanes::first_divergence`] diffs the per-lane traces. Both
//! shapes run at 1 thread and at 4 threads, so lanes × threads is
//! covered (the composition ISSUE 7 promises). A third of the lanes get
//! a per-lane start skew, exercising the hold-then-replay path.
//!
//! `lane_smoke` runs in the tier-1 suite; the full sweep is
//! `lane_sweep` behind `--ignored`:
//!
//! ```text
//! cargo test -p gem-sim --test lane_equivalence -- --ignored
//! ```
//!
//! A failure message always contains the seed, which reproduces the
//! design, the streams, and the divergence deterministically.

use gem_core::{compile, CompileOptions, Compiled, GemSimulator};
use gem_netlist::Bits;
use gem_sim::lanes::first_divergence;
use gem_sim::{random_module, FuzzConfig, FuzzRng, LaneBatch, LaneStream, LaneTarget};

// Run the reference comparison at the machine's full lane width: if any
// stage of the pipeline silently truncated back to 32 lanes, the high
// half of the batch would diverge from its independent runs here.
const LANES: usize = 64;

/// The lane-batched engine as a [`LaneTarget`].
struct BatchTarget {
    sim: GemSimulator,
}

impl LaneTarget for BatchTarget {
    fn poke_lane(&mut self, lane: usize, port: &str, value: &Bits) {
        self.sim.set_input_lane(port, lane as u32, value.clone());
    }
    fn step(&mut self) {
        self.sim.step();
    }
    fn peek_lane(&mut self, lane: usize, port: &str) -> Bits {
        self.sim.output_lane(port, lane as u32)
    }
}

/// A bank of independent single-lane simulators as a [`LaneTarget`].
struct BankTarget {
    sims: Vec<GemSimulator>,
}

impl LaneTarget for BankTarget {
    fn poke_lane(&mut self, lane: usize, port: &str, value: &Bits) {
        self.sims[lane].set_input(port, value.clone());
    }
    fn step(&mut self) {
        for sim in &mut self.sims {
            sim.step();
        }
    }
    fn peek_lane(&mut self, lane: usize, port: &str) -> Bits {
        self.sims[lane].output(port)
    }
}

fn compile_seed(seed: u64, cfg: &FuzzConfig) -> Compiled {
    let m = random_module(seed, cfg);
    let opts = CompileOptions {
        core_width: 64,
        target_parts: 4,
        ..Default::default()
    };
    compile(&m, &opts)
        .or_else(|_| {
            compile(
                &m,
                &CompileOptions {
                    core_width: 256,
                    ..opts
                },
            )
        })
        .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}"))
}

/// Builds 64 distinct per-lane stimulus streams for a compiled design.
/// Every third lane starts `lane / 3` cycles late (per-lane reset skew).
fn batch_for(compiled: &Compiled, seed: u64, cycles: u64) -> LaneBatch {
    let streams = (0..LANES)
        .map(|lane| {
            let mut rng = FuzzRng::new(seed ^ 0xBA7C_4000 ^ (lane as u64) << 40);
            let skew = if lane % 3 == 0 { lane as u64 / 3 } else { 0 };
            let cycles = (0..cycles.saturating_sub(skew))
                .map(|_| {
                    compiled
                        .eaig_inputs
                        .iter()
                        .map(|p| (p.name.clone(), rng.bits(p.width)))
                        .collect()
                })
                .collect();
            LaneStream { skew, cycles }
        })
        .collect();
    LaneBatch::new(streams).expect("64 lanes fit")
}

/// Runs one seed: batch vs bank at `threads`, trace-diffed per lane.
fn run_lane_equivalence(seed: u64, cycles: u64, threads: usize, cfg: &FuzzConfig) {
    let compiled = compile_seed(seed, cfg);
    let batch = batch_for(&compiled, seed, cycles);
    let watch: Vec<&str> = compiled
        .eaig_outputs
        .iter()
        .map(|p| p.name.as_str())
        .collect();

    let mut sim = GemSimulator::new(&compiled).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    sim.set_threads(threads);
    sim.set_lanes(LANES as u32)
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    let mut batched = BatchTarget { sim };
    let batch_trace = batch.run(&mut batched, &watch);

    let sims = (0..LANES)
        .map(|_| {
            let mut s = GemSimulator::new(&compiled).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            s.set_threads(threads);
            s
        })
        .collect();
    let mut bank = BankTarget { sims };
    let bank_trace = batch.run(&mut bank, &watch);

    if let Some(d) = first_divergence(&batch_trace, &bank_trace) {
        panic!(
            "seed {seed} threads {threads}: lane {} diverged from its independent run \
             at cycle {} on output {:?} (batch {:?}, independent {:?})",
            d.lane,
            d.cycle,
            watch[d.port],
            batch_trace[d.lane][d.cycle][d.port],
            bank_trace[d.lane][d.cycle][d.port],
        );
    }

    // The lane metrics must reconcile on the batched engine: every lane
    // stepped every batch cycle.
    let snap = batched.sim.metrics();
    let lane_fam = snap
        .family("gem_sim_lane_steps_total")
        .expect("lane steps exported");
    assert_eq!(
        lane_fam.total(),
        (batch.len_cycles() * LANES as u64) as f64,
        "seed {seed}: lane step counters do not reconcile"
    );
    assert_eq!(
        snap.family("gem_sim_lanes_active").expect("gauge").total(),
        LANES as f64
    );
}

/// Tier-1 smoke: a handful of seeds, both engine shapes, plus one
/// RAM-heavy seed so per-lane RAM images are always covered.
#[test]
fn lane_smoke() {
    for threads in [1usize, 4] {
        for seed in 0..6 {
            run_lane_equivalence(seed, 10, threads, &FuzzConfig::for_seed(seed));
        }
        run_lane_equivalence(3, 8, threads, &FuzzConfig::ram_heavy(3));
    }
}

/// Full sweep: more seeds × longer stimuli × both engine shapes, plus a
/// RAM-heavy band. Run with `--ignored` (CI runs it in the
/// lane-determinism job).
#[test]
#[ignore = "full sweep; run with --ignored"]
fn lane_sweep() {
    for threads in [1usize, 4] {
        for seed in 0..40 {
            run_lane_equivalence(seed, 20, threads, &FuzzConfig::for_seed(seed));
        }
        for seed in 0..8 {
            run_lane_equivalence(seed, 16, threads, &FuzzConfig::ram_heavy(seed));
        }
    }
}
