//! Property tests for the compiled backend's threaded-code lowering
//! (`gem_vgpu::CompiledCore` / `gem_place::CompiledLayer`), driven by
//! the same random-design corpus as the differential fuzz suite:
//!
//! * **totality** — every decoded program the compiler emits lowers
//!   without panicking, and the lowered shape reconciles with the
//!   decoded one (layer count, write split, read table);
//! * **cost-model reconciliation** — the lowered op counts are exactly
//!   the per-cycle `KernelCounters` charges the machine attributes to
//!   each core, summed over a real simulation step;
//! * **snapshot portability** — a mid-run snapshot taken under one
//!   backend restores under the other and continues bit-identically:
//!   the backend is host configuration, not simulation state.
//!
//! Failure messages carry the seed, which reproduces the design and the
//! stimulus deterministically.

use gem_core::{compile, CompileOptions, ExecBackend, GemSimulator};
use gem_isa::disassemble_core_exact;
use gem_sim::{random_module, EaigSim, FuzzConfig, FuzzRng};
use gem_vgpu::CompiledCore;

fn compile_seed(seed: u64) -> gem_core::Compiled {
    let m = random_module(seed, &FuzzConfig::for_seed(seed));
    let opts = CompileOptions {
        core_width: 64,
        target_parts: 4,
        ..Default::default()
    };
    compile(&m, &opts)
        .or_else(|_| {
            compile(
                &m,
                &CompileOptions {
                    core_width: 256,
                    ..opts
                },
            )
        })
        .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}"))
}

/// Every decoded program lowers, and the lowered form preserves the
/// decoded program's shape: same layer count, reads carried over
/// verbatim, writes split into immediate + deferred without loss.
#[test]
fn every_fuzz_program_lowers_and_preserves_shape() {
    for seed in 0..20u64 {
        let compiled = compile_seed(seed);
        let mut cores = 0usize;
        for stage in &compiled.bitstream.stages {
            for bytes in stage {
                let dec = disassemble_core_exact(bytes)
                    .unwrap_or_else(|e| panic!("seed {seed}: decode failed: {e}"));
                let comp = CompiledCore::lower(&dec);
                assert_eq!(comp.width, dec.width, "seed {seed}: width");
                assert_eq!(
                    comp.layers.len(),
                    dec.layers.len(),
                    "seed {seed}: layer count"
                );
                assert_eq!(comp.reads.len(), dec.reads.len(), "seed {seed}: reads");
                assert_eq!(
                    comp.immediate.len() + comp.deferred.len(),
                    dec.writes.len(),
                    "seed {seed}: write split lost entries"
                );
                let deferred = dec.writes.iter().filter(|w| w.deferred).count();
                assert_eq!(
                    comp.deferred.len(),
                    deferred,
                    "seed {seed}: deferred classification"
                );
                cores += 1;
            }
        }
        assert!(cores > 0, "seed {seed}: empty bitstream");
    }
}

/// The lowered op counts *are* the cost model: one simulated step (no
/// pruning can fire on the first cycle) charges exactly the sum of
/// `layer_op_totals()` over every core, for shared accesses, fold ALU
/// ops, and block syncs — under both backends.
#[test]
fn lowered_op_counts_reconcile_with_kernel_counters() {
    for seed in 0..12u64 {
        let compiled = compile_seed(seed);
        let (mut shared, mut alu, mut syncs) = (0u64, 0u64, 0u64);
        for stage in &compiled.bitstream.stages {
            for bytes in stage {
                let dec = disassemble_core_exact(bytes)
                    .unwrap_or_else(|e| panic!("seed {seed}: decode failed: {e}"));
                let (s, a, y) = CompiledCore::lower(&dec).layer_op_totals();
                shared += s;
                alu += a;
                syncs += y;
            }
        }
        for backend in [ExecBackend::Interpreted, ExecBackend::Compiled] {
            let mut sim =
                GemSimulator::new(&compiled).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            sim.set_backend(backend);
            sim.step();
            let c = sim.counters();
            assert_eq!(
                c.shared_accesses,
                shared,
                "seed {seed}: shared accesses under {}",
                backend.name()
            );
            assert_eq!(
                c.alu_ops,
                alu,
                "seed {seed}: alu ops under {}",
                backend.name()
            );
            assert_eq!(
                c.block_syncs,
                syncs,
                "seed {seed}: block syncs under {}",
                backend.name()
            );
        }
    }
}

/// A snapshot taken mid-run under one backend restores and continues
/// bit-identically under the other — in both directions, checked
/// against the golden E-AIG model throughout. The backend knob is host
/// configuration, never serialized state.
#[test]
fn snapshots_port_across_backends() {
    for (seed, first, second) in [
        (3u64, ExecBackend::Interpreted, ExecBackend::Compiled),
        (7u64, ExecBackend::Compiled, ExecBackend::Interpreted),
    ] {
        let m = random_module(seed, &FuzzConfig::for_seed(seed));
        let compiled = compile_seed(seed);
        let mut gold = EaigSim::new(&compiled.eaig);
        let mut sim = GemSimulator::new(&compiled).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        sim.set_backend(first);

        let n_in = compiled.eaig.inputs().len();
        let mut stim = FuzzRng::new(seed ^ 0x5717_B0B5);
        let drive = |sim: &mut GemSimulator, gold: &mut EaigSim<'_>, stim: &mut FuzzRng| {
            let mut bitvec = vec![false; n_in];
            for p in m.inputs() {
                let w = m.width(p.net);
                let v = stim.bits(w);
                sim.set_input(&p.name, v.clone());
                let pb = compiled
                    .eaig_inputs
                    .iter()
                    .find(|pb| pb.name == p.name)
                    .unwrap();
                for i in 0..w {
                    bitvec[pb.lsb_index + i as usize] = v.bit(i);
                }
            }
            for (i, &v) in bitvec.iter().enumerate() {
                gold.set_input(i, v);
            }
        };
        let check = |sim: &GemSimulator, gold: &mut EaigSim<'_>, cycle: usize| {
            for pb in compiled.eaig_outputs.iter() {
                let v = sim.output(&pb.name);
                for i in 0..pb.width {
                    assert_eq!(
                        v.bit(i),
                        gold.output(pb.lsb_index + i as usize),
                        "seed {seed} cycle {cycle}: {}[{i}] diverged after restore",
                        pb.name
                    );
                }
            }
        };

        for cycle in 0..8 {
            drive(&mut sim, &mut gold, &mut stim);
            gold.eval();
            sim.step();
            check(&sim, &mut gold, cycle);
            gold.step();
        }
        let snap = sim.snapshot();
        let counters_at_snap = sim.counters();

        // Fresh simulator, opposite backend, restored mid-run state.
        let mut sim2 = GemSimulator::new(&compiled).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        sim2.set_backend(second);
        sim2.restore(&snap)
            .unwrap_or_else(|e| panic!("seed {seed}: restore failed: {e}"));
        assert_eq!(
            sim2.backend(),
            second,
            "seed {seed}: restore must not change the configured backend"
        );
        assert_eq!(
            sim2.counters(),
            counters_at_snap,
            "seed {seed}: counters did not survive the snapshot"
        );

        for cycle in 8..16 {
            drive(&mut sim2, &mut gold, &mut stim);
            gold.eval();
            sim2.step();
            check(&sim2, &mut gold, cycle);
            gold.step();
        }
    }
}
