//! Lane-batched multi-stimulus plumbing (`docs/BATCH.md`).
//!
//! GEM's evaluator computes 64 Boolean signals per machine word, so one
//! bitstream execution can carry 64 *independent* stimulus streams — one
//! per bit-lane — at the cost of one (the GATSPI/RTLflow observation;
//! [`crate::BatchSim`] is the same idea over the E-AIG). This module is
//! the stimulus side of that capability:
//!
//! * [`LaneBatch`] — up to 64 per-lane stimulus streams with per-lane
//!   reset/cycle *skew* (lane `k` may start its stream `skew` cycles
//!   late, holding its inputs until then) and per-cycle activity masks,
//! * [`pack`]/[`unpack`] — the lane-word transpose: per-lane [`Bits`]
//!   values ⇄ one machine [`Word`] lane word per port bit, the format
//!   `GemSimulator::set_input_lanes` / `output_lanes` speak,
//! * [`LaneTarget`] + [`LaneBatch::run`] — a generic per-lane
//!   poke/step/peek surface and a driver that replays the whole batch
//!   against it, producing per-lane traces, with
//!   [`first_divergence`] as the golden-model comparison hook: run the
//!   same batch against the lane-batched engine and against N
//!   independent golden models, then diff the traces per lane.
//!
//! Everything here is engine-agnostic: the crate's golden models and
//! `gem-core`'s `GemSimulator` both fit the [`LaneTarget`] shape.

use gem_netlist::Bits;
use std::fmt;

/// The machine lane word this module packs into — keep in lockstep with
/// `gem_place::Word` (the lib dependency graph deliberately stays
/// netlist + aig, so the alias is mirrored here rather than imported;
/// the differential suites hold the two in agreement end to end).
pub type Word = u64;

/// Maximum stimulus lanes a batch may hold (one per bit of the machine
/// [`Word`]; keep in lockstep with `GemGpu::MAX_LANES`).
pub const MAX_LANES: usize = Word::BITS as usize;

/// Errors from batch construction and the pack/unpack transposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaneError {
    /// More than [`MAX_LANES`] streams were supplied.
    TooManyLanes(usize),
    /// An empty batch was supplied.
    NoLanes,
    /// Two lanes disagree about a packed value's width.
    WidthMismatch {
        /// Lane whose value has the unexpected width.
        lane: usize,
        /// Width lane 0 established.
        want: u32,
        /// Width actually found.
        got: u32,
    },
    /// A lane index at or beyond the batch's lane count.
    LaneOutOfRange {
        /// The offending index.
        lane: usize,
        /// Lanes in the batch.
        lanes: usize,
    },
}

impl fmt::Display for LaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaneError::TooManyLanes(n) => {
                write!(
                    f,
                    "{n} stimulus lanes requested, the maximum is {MAX_LANES}"
                )
            }
            LaneError::NoLanes => write!(f, "a batch needs at least one lane"),
            LaneError::WidthMismatch { lane, want, got } => {
                write!(
                    f,
                    "lane {lane} packs a {got}-bit value, lane 0 set {want} bits"
                )
            }
            LaneError::LaneOutOfRange { lane, lanes } => {
                write!(f, "lane {lane} out of range for a {lanes}-lane batch")
            }
        }
    }
}

impl std::error::Error for LaneError {}

/// One lane's stimulus: a cycle-indexed list of pokes plus a start skew.
#[derive(Debug, Clone, Default)]
pub struct LaneStream {
    /// Cycles this lane holds (inputs frozen, stream not started) before
    /// cycle 0 of `cycles` applies — per-lane reset/cycle skew.
    pub skew: u64,
    /// `cycles[c]` is the list of `(port, value)` pokes applied at
    /// stream cycle `c` (batch cycle `skew + c`).
    pub cycles: Vec<Vec<(String, Bits)>>,
}

impl LaneStream {
    /// A skew-free stream from per-cycle pokes.
    pub fn new(cycles: Vec<Vec<(String, Bits)>>) -> LaneStream {
        LaneStream { skew: 0, cycles }
    }
}

/// Up to [`MAX_LANES`] independent stimulus streams destined for the
/// bit-lanes of one bitstream execution.
#[derive(Debug, Clone)]
pub struct LaneBatch {
    streams: Vec<LaneStream>,
}

impl LaneBatch {
    /// Builds a batch from per-lane streams (lane = index).
    ///
    /// # Errors
    ///
    /// [`LaneError::NoLanes`] / [`LaneError::TooManyLanes`] outside
    /// `1..=`[`MAX_LANES`].
    pub fn new(streams: Vec<LaneStream>) -> Result<LaneBatch, LaneError> {
        if streams.is_empty() {
            return Err(LaneError::NoLanes);
        }
        if streams.len() > MAX_LANES {
            return Err(LaneError::TooManyLanes(streams.len()));
        }
        Ok(LaneBatch { streams })
    }

    /// Number of lanes in the batch.
    pub fn lanes(&self) -> usize {
        self.streams.len()
    }

    /// The streams, lane-indexed.
    pub fn streams(&self) -> &[LaneStream] {
        &self.streams
    }

    /// Batch length in cycles: the last cycle any lane still applies
    /// stimulus (skew included).
    pub fn len_cycles(&self) -> u64 {
        self.streams
            .iter()
            .map(|s| s.skew + s.cycles.len() as u64)
            .max()
            .unwrap_or(0)
    }

    /// Poke mask for `cycle`: bit `k` set when lane `k`'s stream is
    /// applying stimulus at that batch cycle (past its skew, before its
    /// end).
    pub fn active_mask(&self, cycle: u64) -> Word {
        let mut m: Word = 0;
        for (lane, s) in self.streams.iter().enumerate() {
            if cycle >= s.skew && cycle < s.skew + s.cycles.len() as u64 {
                m |= 1 << lane;
            }
        }
        m
    }

    /// The pokes lane `lane` applies at batch `cycle`, or `None` while
    /// the lane holds (skew not yet elapsed or stream exhausted).
    pub fn pokes_at(&self, cycle: u64, lane: usize) -> Option<&[(String, Bits)]> {
        let s = self.streams.get(lane)?;
        let c = cycle.checked_sub(s.skew)?;
        s.cycles.get(c as usize).map(Vec::as_slice)
    }

    /// Replays the whole batch against `target` and records `watch`
    /// ports after every step: the result is `[lane][cycle]` → port
    /// values in `watch` order. This is the generic half of the
    /// golden-model comparison: run it once against the lane-batched
    /// engine and once against independent per-lane models, then
    /// [`first_divergence`] diffs the traces.
    pub fn run<T: LaneTarget>(&self, target: &mut T, watch: &[&str]) -> Vec<Vec<Vec<Bits>>> {
        let lanes = self.lanes();
        let mut traces = vec![Vec::new(); lanes];
        for cycle in 0..self.len_cycles() {
            for lane in 0..lanes {
                if let Some(pokes) = self.pokes_at(cycle, lane) {
                    for (port, value) in pokes {
                        target.poke_lane(lane, port, value);
                    }
                }
            }
            target.step();
            for (lane, trace) in traces.iter_mut().enumerate() {
                trace.push(
                    watch
                        .iter()
                        .map(|port| target.peek_lane(lane, port))
                        .collect(),
                );
            }
        }
        traces
    }
}

/// The per-lane poke/step/peek surface [`LaneBatch::run`] drives. A
/// lane-batched engine implements it natively; a bank of independent
/// single-stimulus simulators implements it by indexing (which is
/// exactly how the differential lane-equivalence suite builds its
/// reference).
pub trait LaneTarget {
    /// Applies one port value in one lane.
    fn poke_lane(&mut self, lane: usize, port: &str, value: &Bits);
    /// Advances every lane one cycle.
    fn step(&mut self);
    /// Reads one port as one lane observed it during the last step.
    fn peek_lane(&mut self, lane: usize, port: &str) -> Bits;
}

/// Where two per-lane traces first disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneDivergence {
    /// Lane that diverged.
    pub lane: usize,
    /// Cycle of first disagreement.
    pub cycle: usize,
    /// Index into the watch list.
    pub port: usize,
}

/// Diffs two traces produced by [`LaneBatch::run`], returning the first
/// `(lane, cycle, port)` where they disagree (shape differences count as
/// immediate divergence at the first missing position).
pub fn first_divergence(a: &[Vec<Vec<Bits>>], b: &[Vec<Vec<Bits>>]) -> Option<LaneDivergence> {
    for lane in 0..a.len().max(b.len()) {
        let (la, lb) = match (a.get(lane), b.get(lane)) {
            (Some(la), Some(lb)) => (la, lb),
            _ => {
                return Some(LaneDivergence {
                    lane,
                    cycle: 0,
                    port: 0,
                })
            }
        };
        for cycle in 0..la.len().max(lb.len()) {
            let (ca, cb) = match (la.get(cycle), lb.get(cycle)) {
                (Some(ca), Some(cb)) => (ca, cb),
                _ => {
                    return Some(LaneDivergence {
                        lane,
                        cycle,
                        port: 0,
                    })
                }
            };
            for port in 0..ca.len().max(cb.len()) {
                if ca.get(port) != cb.get(port) {
                    return Some(LaneDivergence { lane, cycle, port });
                }
            }
        }
    }
    None
}

/// Packs one per-lane value per lane into lane words: `words[i]` bit `k`
/// is bit `i` of `values[k]`. All values must share lane 0's width.
///
/// # Errors
///
/// [`LaneError`] on an empty/oversized slice or width disagreement.
pub fn pack(values: &[Bits]) -> Result<Vec<Word>, LaneError> {
    if values.is_empty() {
        return Err(LaneError::NoLanes);
    }
    if values.len() > MAX_LANES {
        return Err(LaneError::TooManyLanes(values.len()));
    }
    let width = values[0].width();
    let mut words: Vec<Word> = vec![0; width as usize];
    for (lane, v) in values.iter().enumerate() {
        if v.width() != width {
            return Err(LaneError::WidthMismatch {
                lane,
                want: width,
                got: v.width(),
            });
        }
        for (i, w) in words.iter_mut().enumerate() {
            if v.bit(i as u32) {
                *w |= 1 << lane;
            }
        }
    }
    Ok(words)
}

/// Unpacks lane words back into per-lane values: the inverse of
/// [`pack`] for the first `lanes` lanes.
pub fn unpack(words: &[Word], lanes: usize) -> Vec<Bits> {
    (0..lanes.min(MAX_LANES))
        .map(|lane| {
            let mut v = Bits::zeros(words.len() as u32);
            for (i, w) in words.iter().enumerate() {
                v.set_bit(i as u32, (w >> lane) & 1 == 1);
            }
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u64, w: u32) -> Bits {
        Bits::from_u64(v, w)
    }

    #[test]
    fn batch_size_is_validated() {
        assert!(matches!(
            LaneBatch::new(Vec::new()),
            Err(LaneError::NoLanes)
        ));
        let too_many = vec![LaneStream::default(); 65];
        assert!(matches!(
            LaneBatch::new(too_many),
            Err(LaneError::TooManyLanes(65))
        ));
        let ok = LaneBatch::new(vec![LaneStream::default(); 64]).expect("64 lanes fit");
        assert_eq!(ok.lanes(), 64);
    }

    #[test]
    fn pack_unpack_round_trips() {
        let values: Vec<Bits> = (0..64u64).map(|k| b((k * 0x11) & 0xFF, 8)).collect();
        let words = pack(&values).expect("packs");
        assert_eq!(words.len(), 8);
        assert_eq!(unpack(&words, 64), values);
        // Spot-check the transpose: bit i of word = lane's value bit i.
        for (i, w) in words.iter().enumerate() {
            for (lane, v) in values.iter().enumerate() {
                assert_eq!((w >> lane) & 1 == 1, v.bit(i as u32), "bit {i} lane {lane}");
            }
        }
    }

    #[test]
    fn pack_rejects_mixed_widths() {
        let r = pack(&[b(1, 4), b(1, 5)]);
        assert_eq!(
            r,
            Err(LaneError::WidthMismatch {
                lane: 1,
                want: 4,
                got: 5
            })
        );
        assert_eq!(pack(&[]), Err(LaneError::NoLanes));
        let many: Vec<Bits> = (0..65).map(|_| b(0, 1)).collect();
        assert_eq!(pack(&many), Err(LaneError::TooManyLanes(65)));
    }

    #[test]
    fn skew_shifts_streams_and_masks() {
        let mk = |skew, n: usize| LaneStream {
            skew,
            cycles: (0..n)
                .map(|c| vec![("d".to_string(), b(c as u64, 8))])
                .collect(),
        };
        let batch = LaneBatch::new(vec![mk(0, 4), mk(2, 4)]).expect("batch");
        assert_eq!(batch.len_cycles(), 6);
        assert_eq!(batch.active_mask(0), 0b01);
        assert_eq!(batch.active_mask(2), 0b11);
        assert_eq!(batch.active_mask(4), 0b10);
        assert_eq!(batch.active_mask(6), 0);
        // Lane 1 holds for two cycles, then replays its stream shifted.
        assert!(batch.pokes_at(1, 1).is_none());
        assert_eq!(batch.pokes_at(2, 1).unwrap()[0].1, b(0, 8));
        assert_eq!(batch.pokes_at(5, 1).unwrap()[0].1, b(3, 8));
        assert!(batch.pokes_at(6, 1).is_none());
        assert!(batch.pokes_at(0, 7).is_none(), "unknown lane holds");
    }

    /// A toy lane target: per-lane registered pass-through, to prove the
    /// driver applies skews and the divergence diff pinpoints mismatches.
    struct Regs {
        d: Vec<Bits>,
        q: Vec<Bits>,
    }

    impl LaneTarget for Regs {
        fn poke_lane(&mut self, lane: usize, _port: &str, value: &Bits) {
            self.d[lane] = value.clone();
        }
        fn step(&mut self) {
            self.q = self.d.clone();
        }
        fn peek_lane(&mut self, lane: usize, _port: &str) -> Bits {
            self.q[lane].clone()
        }
    }

    #[test]
    fn run_produces_per_lane_traces_and_divergence_diffs() {
        let stream = |base: u64| LaneStream {
            skew: 0,
            cycles: (0..3)
                .map(|c| vec![("d".to_string(), b(base + c, 8))])
                .collect(),
        };
        let batch = LaneBatch::new(vec![stream(10), stream(20)]).expect("batch");
        let mut t = Regs {
            d: vec![b(0, 8); 2],
            q: vec![b(0, 8); 2],
        };
        let trace = batch.run(&mut t, &["q"]);
        assert_eq!(trace[0][2][0], b(12, 8));
        assert_eq!(trace[1][0][0], b(20, 8));
        assert_eq!(first_divergence(&trace, &trace), None);
        let mut other = trace.clone();
        other[1][2][0] = b(0, 8);
        assert_eq!(
            first_divergence(&trace, &other),
            Some(LaneDivergence {
                lane: 1,
                cycle: 2,
                port: 0
            })
        );
    }
}
