//! Baseline and reference simulators for the GEM workspace.
//!
//! The paper compares GEM against a leading commercial event-driven
//! simulator, Verilator (1 and 8 threads), and the GPU gate-level
//! simulator GL0AM. This crate provides the corresponding stand-ins plus
//! the golden reference models used for correctness cross-checks:
//!
//! * [`EaigSim`] — golden-model interpreter over the E-AIG, the ground
//!   truth every other engine is checked against,
//! * [`NetlistSim`] — word-level interpreter over the RTL netlist, used to
//!   verify synthesis,
//! * [`event::EventSim`] — event-driven simulator whose cost scales with
//!   switching activity (the "commercial tool" role),
//! * [`levelized::LevelizedSim`] — full-cycle levelized simulator with an
//!   optional thread pool (the "Verilator" role),
//! * [`batch::BatchSim`] — 64 independent testbenches per step via word
//!   parallelism (the throughput-oriented RTLflow-style alternative the
//!   paper contrasts itself against),
//! * a gate-level LUT4 cost model on the virtual GPU (the "GL0AM" role)
//!   lives in `gem-vgpu` to avoid a dependency cycle.
//!
//! All engines share the same sequential semantics: synchronous single
//! clock, read-first RAM ports, inputs sampled at the beginning of each
//! cycle, outputs observed after combinational settling.

pub mod batch;
pub mod event;
pub mod fuzz;
pub mod golden;
pub mod lanes;
pub mod levelized;
pub mod netlist_sim;

pub use batch::BatchSim;
pub use event::EventSim;
pub use fuzz::{random_module, FuzzConfig, FuzzRng};
pub use golden::EaigSim;
pub use lanes::{LaneBatch, LaneError, LaneStream, LaneTarget};
pub use levelized::LevelizedSim;
pub use netlist_sim::NetlistSim;
