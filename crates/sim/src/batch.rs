//! Word-parallel batch simulation (the throughput-oriented alternative).
//!
//! The paper's related work (RTLflow-style, reference 13 in the paper) fills the
//! GPU's data-parallel lanes with *independent testbenches*: "While this
//! strategy improves simulation throughput, it cannot help in reducing
//! latency which is critical for rapid turnaround." [`BatchSim`] is that
//! idea on a CPU word: 64 independent stimulus streams evaluated
//! simultaneously, one bit-lane each, using ordinary `u64` bitwise ops
//! (Observation 3's word-level parallelism applied across testbenches
//! instead of across circuit bits).
//!
//! It exists both as a useful tool (regression sweeps) and as the
//! workspace's quantitative demonstration of the throughput/latency
//! distinction: per-testbench throughput beats every latency-oriented
//! engine, while the latency of any *single* testbench equals the whole
//! batch's runtime.

use gem_aig::{Eaig, Lit, Node, RAM_ADDR_BITS};

/// Number of independent testbenches evaluated per [`BatchSim`] step.
pub const LANES: usize = 64;

/// 64-testbench word-parallel simulator for an [`Eaig`].
///
/// Lane `k` of every `u64` word belongs to testbench `k`.
///
/// # Example
///
/// ```
/// use gem_aig::Eaig;
/// use gem_sim::BatchSim;
///
/// let mut g = Eaig::new();
/// let a = g.input("a");
/// let b = g.input("b");
/// let x = g.xor(a, b);
/// g.output("x", x);
/// let mut sim = BatchSim::new(&g);
/// // Lane 0: a=1,b=0; lane 1: a=1,b=1; all other lanes zero.
/// let outs = sim.cycle(&[0b01 | 0b10, 0b10]);
/// assert_eq!(outs[0] & 0b11, 0b01);
/// ```
#[derive(Debug)]
pub struct BatchSim<'a> {
    g: &'a Eaig,
    /// One 64-lane word per node.
    vals: Vec<u64>,
    ff: Vec<u64>,
    /// RAM contents per lane (lane-major: `ram[lane][addr]`).
    ram: Vec<Vec<Box<[u32]>>>,
    ram_rdata: Vec<[u32; LANES]>,
}

impl<'a> BatchSim<'a> {
    /// Creates a batch simulator; all 64 lanes start from power-on state.
    pub fn new(g: &'a Eaig) -> Self {
        BatchSim {
            vals: vec![0; g.len()],
            ff: g
                .ffs()
                .iter()
                .map(|f| if f.init { u64::MAX } else { 0 })
                .collect(),
            ram: g
                .rams()
                .iter()
                .map(|_| {
                    (0..LANES)
                        .map(|_| vec![0u32; 1 << RAM_ADDR_BITS].into_boxed_slice())
                        .collect()
                })
                .collect(),
            ram_rdata: vec![[0; LANES]; g.rams().len()],
            g,
        }
    }

    #[inline]
    fn lit(&self, l: Lit) -> u64 {
        let v = self.vals[l.node().0 as usize];
        if l.is_inverted() {
            !v
        } else {
            v
        }
    }

    /// Runs one cycle for all 64 testbenches. `inputs[i]` packs input
    /// `i`'s bit for each lane. Returns one packed word per output.
    pub fn cycle(&mut self, inputs: &[u64]) -> Vec<u64> {
        let _span = if gem_telemetry::span::enabled() {
            let mut sp = gem_telemetry::span::span("batch_cycle", "sim");
            sp.arg("nodes", self.g.nodes().len() as u64);
            Some(sp)
        } else {
            None
        };
        for (i, n) in self.g.nodes().iter().enumerate() {
            self.vals[i] = match *n {
                Node::Const0 => 0,
                Node::Input(idx) => inputs.get(idx as usize).copied().unwrap_or(0),
                Node::And(a, b) => self.lit(a) & self.lit(b),
                Node::FfOut(ff) => self.ff[ff.0 as usize],
                Node::RamOut { ram, bit } => {
                    let mut w = 0u64;
                    for (lane, rd) in self.ram_rdata[ram.0 as usize].iter().enumerate() {
                        w |= u64::from((rd >> bit) & 1) << lane;
                    }
                    w
                }
            };
        }
        let outs = self.g.outputs().iter().map(|(_, l)| self.lit(*l)).collect();
        // Sequential update.
        let new_ff: Vec<u64> = self.g.ffs().iter().map(|f| self.lit(f.next)).collect();
        for (ri, r) in self.g.rams().iter().enumerate() {
            let raddr = self.addrs(&r.read_addr);
            let waddr = self.addrs(&r.write_addr);
            let we = self.lit(r.write_en);
            let mut wdata = [0u32; LANES];
            for (bit, &l) in r.write_data.iter().enumerate() {
                let w = self.lit(l);
                for (lane, slot) in wdata.iter_mut().enumerate() {
                    *slot |= (((w >> lane) & 1) as u32) << bit;
                }
            }
            for lane in 0..LANES {
                self.ram_rdata[ri][lane] = self.ram[ri][lane][raddr[lane]];
                if (we >> lane) & 1 == 1 {
                    self.ram[ri][lane][waddr[lane]] = wdata[lane];
                }
            }
        }
        self.ff = new_ff;
        outs
    }

    fn addrs(&self, bits: &[Lit; RAM_ADDR_BITS]) -> [usize; LANES] {
        let mut a = [0usize; LANES];
        for (i, &l) in bits.iter().enumerate() {
            let w = self.lit(l);
            for (lane, slot) in a.iter_mut().enumerate() {
                *slot |= (((w >> lane) & 1) as usize) << i;
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::EaigSim;
    use gem_aig::Lit;

    fn mixer() -> Eaig {
        let mut g = Eaig::new();
        let ins: Vec<Lit> = (0..6).map(|i| g.input(format!("i{i}"))).collect();
        let q = g.ff(true);
        let x = g.xor_many(&ins);
        let nx = g.xor(q, x);
        g.set_ff_next(q, nx);
        let o = g.and(q, x.flip());
        g.output("o", o);
        g.output("q", q);
        g
    }

    #[test]
    fn every_lane_matches_a_scalar_run() {
        let g = mixer();
        let mut batch = BatchSim::new(&g);
        // 64 scalar references, one per lane, with distinct stimuli.
        let mut refs: Vec<EaigSim> = (0..LANES).map(|_| EaigSim::new(&g)).collect();
        let mut seed = 0xDEADBEEFu64;
        for _ in 0..20 {
            let mut packed = vec![0u64; 6];
            let mut scalar_inputs = vec![[false; 6]; LANES];
            for (lane, lane_inputs) in scalar_inputs.iter_mut().enumerate() {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                for i in 0..6 {
                    let bit = (seed >> (i * 7 + lane % 5)) & 1 == 1;
                    lane_inputs[i] = bit;
                    if bit {
                        packed[i] |= 1 << lane;
                    }
                }
            }
            let outs = batch.cycle(&packed);
            for (lane, r) in refs.iter_mut().enumerate() {
                let want = r.cycle(&scalar_inputs[lane]);
                for (oi, &w) in want.iter().enumerate() {
                    assert_eq!((outs[oi] >> lane) & 1 == 1, w, "lane {lane} output {oi}");
                }
            }
        }
    }

    #[test]
    fn lanes_are_independent() {
        let g = mixer();
        let mut batch = BatchSim::new(&g);
        // Drive only lane 3; every other lane must follow the all-zero
        // trajectory.
        let mut solo = EaigSim::new(&g);
        let mut zero = EaigSim::new(&g);
        for c in 0..10 {
            let active = c % 2 == 0;
            let packed: Vec<u64> = (0..6)
                .map(|i| if active && i < 3 { 1u64 << 3 } else { 0 })
                .collect();
            let outs = batch.cycle(&packed);
            let mut ins = [false; 6];
            if active {
                ins[0] = true;
                ins[1] = true;
                ins[2] = true;
            }
            let want3 = solo.cycle(&ins);
            let want0 = zero.cycle(&[false; 6]);
            assert_eq!((outs[0] >> 3) & 1 == 1, want3[0]);
            assert_eq!(outs[0] & 1 == 1, want0[0]);
            assert_eq!((outs[1] >> 3) & 1 == 1, want3[1]);
        }
    }

    #[test]
    fn ram_lanes_do_not_interfere() {
        let mut g = Eaig::new();
        let r = g.ram();
        let we = g.input("we");
        let d0 = g.input("d0");
        let a0 = g.input("a0");
        let mut wd = [Lit::FALSE; 32];
        wd[0] = d0;
        let mut addr = [Lit::FALSE; 13];
        addr[0] = a0;
        g.set_ram_ports(r, addr, addr, wd, we);
        g.output("q0", g.ram_out(r, 0));
        let mut batch = BatchSim::new(&g);
        // Lane 5 writes 1 at address 1; lane 9 writes 1 at address 0.
        batch.cycle(&[1 << 5 | 1 << 9, 1 << 5 | 1 << 9, 1 << 5]);
        // Read address 1 on every lane.
        batch.cycle(&[0, 0, u64::MAX]);
        let outs = batch.cycle(&[0, 0, u64::MAX]);
        assert_eq!((outs[0] >> 5) & 1, 1, "lane 5 wrote addr 1");
        assert_eq!((outs[0] >> 9) & 1, 0, "lane 9 wrote addr 0, reads addr 1");
        assert_eq!(outs[0] & 1, 0, "lane 0 wrote nothing");
    }
}
