//! Event-driven simulation over the E-AIG.
//!
//! This is the stand-in for the paper's (name-withheld) commercial
//! event-driven simulator: "event-based simulators ... are optimized for
//! efficiency by selectively updating only the circuit elements that are
//! actively switching". Its per-cycle cost is proportional to switching
//! activity, so on low-activity workloads it beats full-cycle engines and
//! on high-activity ones it loses — exactly the behaviour Table II relies
//! on. It also reports the *signal events per cycle* metric the paper
//! quotes (8,612 events for OpenPiton1 vs 28,789 for OpenPiton8).

use gem_aig::{Eaig, Lit, Node, RAM_ADDR_BITS};

/// Levelized event-driven simulator for an [`Eaig`].
///
/// # Example
///
/// ```
/// use gem_aig::Eaig;
/// use gem_sim::EventSim;
///
/// let mut g = Eaig::new();
/// let a = g.input("a");
/// let b = g.input("b");
/// let x = g.and(a, b);
/// g.output("x", x);
///
/// let mut sim = EventSim::new(&g);
/// let out = sim.cycle(&[true, true]);
/// assert!(out[0]);
/// // A quiet cycle produces almost no events.
/// let before = sim.events_total();
/// sim.cycle(&[true, true]);
/// assert_eq!(sim.events_total(), before);
/// ```
#[derive(Debug)]
pub struct EventSim<'a> {
    g: &'a Eaig,
    vals: Vec<bool>,
    ff: Vec<bool>,
    ram: Vec<Box<[u32]>>,
    ram_rdata: Vec<u32>,
    inputs: Vec<bool>,
    levels: Vec<u32>,
    fanouts: Vec<Vec<u32>>,
    /// Per-level dirty worklists.
    dirty: Vec<Vec<u32>>,
    on_list: Vec<bool>,
    events_total: u64,
    cycles: u64,
}

impl<'a> EventSim<'a> {
    /// Creates a simulator with power-on state.
    pub fn new(g: &'a Eaig) -> Self {
        let levels = g.node_levels().to_vec();
        let mut fanouts = vec![Vec::new(); g.len()];
        for (i, n) in g.nodes().iter().enumerate() {
            if let Node::And(a, b) = n {
                fanouts[a.node().0 as usize].push(i as u32);
                if a.node() != b.node() {
                    fanouts[b.node().0 as usize].push(i as u32);
                }
            }
        }
        let depth = levels.iter().copied().max().unwrap_or(0) as usize;
        let mut sim = EventSim {
            vals: vec![false; g.len()],
            ff: g.ffs().iter().map(|f| f.init).collect(),
            ram: g
                .rams()
                .iter()
                .map(|_| vec![0u32; 1 << RAM_ADDR_BITS].into_boxed_slice())
                .collect(),
            ram_rdata: vec![0; g.rams().len()],
            inputs: vec![false; g.inputs().len()],
            levels,
            fanouts,
            dirty: vec![Vec::new(); depth + 1],
            on_list: vec![false; g.len()],
            events_total: 0,
            cycles: 0,
            g,
        };
        // Establish a consistent starting point (all-zero inputs, power-on
        // state) with one full evaluation; event propagation then only has
        // to track deltas.
        for (i, n) in g.nodes().iter().enumerate() {
            sim.vals[i] = match *n {
                Node::Const0 => false,
                Node::Input(idx) => sim.inputs[idx as usize],
                Node::And(a, b) => sim.lit(a) && sim.lit(b),
                Node::FfOut(ff) => sim.ff[ff.0 as usize],
                Node::RamOut { ram, bit } => (sim.ram_rdata[ram.0 as usize] >> bit) & 1 == 1,
            };
        }
        sim
    }

    fn lit(&self, l: Lit) -> bool {
        self.vals[l.node().0 as usize] ^ l.is_inverted()
    }

    fn schedule(&mut self, node: u32) {
        if !self.on_list[node as usize] {
            self.on_list[node as usize] = true;
            self.dirty[self.levels[node as usize] as usize].push(node);
        }
    }

    fn set_source(&mut self, node: u32, v: bool) {
        if self.vals[node as usize] != v {
            self.vals[node as usize] = v;
            self.events_total += 1;
            for fo_idx in 0..self.fanouts[node as usize].len() {
                let fo = self.fanouts[node as usize][fo_idx];
                self.schedule(fo);
            }
        }
    }

    /// Runs one cycle: applies `inputs` (creation order), propagates
    /// events, returns outputs, clocks the state.
    pub fn cycle(&mut self, inputs: &[bool]) -> Vec<bool> {
        self.cycles += 1;
        // 1. Input events.
        for (i, &v) in inputs.iter().enumerate() {
            self.inputs[i] = v;
        }
        let input_nodes: Vec<(u32, bool)> = self
            .g
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, (_, id))| (id.0, self.inputs[i]))
            .collect();
        for (node, v) in input_nodes {
            self.set_source(node, v);
        }
        // State-source events (FF outputs / RAM read data changed at the
        // previous clock edge are applied here, at cycle start).
        let ff_nodes: Vec<(u32, bool)> = self
            .g
            .ffs()
            .iter()
            .enumerate()
            .map(|(i, f)| (f.out.0, self.ff[i]))
            .collect();
        for (node, v) in ff_nodes {
            self.set_source(node, v);
        }
        let ram_nodes: Vec<(u32, bool)> = self
            .g
            .rams()
            .iter()
            .enumerate()
            .flat_map(|(ri, r)| {
                let word = self.ram_rdata[ri];
                r.out
                    .iter()
                    .enumerate()
                    .map(move |(bit, id)| (id.0, (word >> bit) & 1 == 1))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (node, v) in ram_nodes {
            self.set_source(node, v);
        }
        // 2. Propagate level by level.
        for level in 1..self.dirty.len() {
            let mut work = std::mem::take(&mut self.dirty[level]);
            for &node in &work {
                self.on_list[node as usize] = false;
                if let Node::And(a, b) = self.g.node(gem_aig::NodeId(node)) {
                    let nv = self.lit(a) && self.lit(b);
                    if nv != self.vals[node as usize] {
                        self.vals[node as usize] = nv;
                        self.events_total += 1;
                        for fo_idx in 0..self.fanouts[node as usize].len() {
                            let fo = self.fanouts[node as usize][fo_idx];
                            self.schedule(fo);
                        }
                    }
                }
            }
            work.clear();
        }
        // 3. Outputs.
        let outs: Vec<bool> = self.g.outputs().iter().map(|(_, l)| self.lit(*l)).collect();
        // 4. Clock edge.
        let new_ff: Vec<bool> = self.g.ffs().iter().map(|f| self.lit(f.next)).collect();
        for (ri, r) in self.g.rams().iter().enumerate() {
            let raddr = self.addr_of(&r.read_addr);
            self.ram_rdata[ri] = self.ram[ri][raddr];
            if self.lit(r.write_en) {
                let waddr = self.addr_of(&r.write_addr);
                let mut w = 0u32;
                for (bit, &l) in r.write_data.iter().enumerate() {
                    if self.lit(l) {
                        w |= 1 << bit;
                    }
                }
                self.ram[ri][waddr] = w;
            }
        }
        self.ff = new_ff;
        outs
    }

    fn addr_of(&self, bits: &[Lit; RAM_ADDR_BITS]) -> usize {
        let mut a = 0usize;
        for (i, &l) in bits.iter().enumerate() {
            if self.lit(l) {
                a |= 1 << i;
            }
        }
        a
    }

    /// Total signal events since construction (the paper's activity
    /// metric).
    pub fn events_total(&self) -> u64 {
        self.events_total
    }

    /// Cycles simulated.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Average signal events per cycle.
    pub fn events_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.events_total as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::EaigSim;
    use gem_aig::Eaig;

    fn xor_tree() -> Eaig {
        let mut g = Eaig::new();
        let ins: Vec<_> = (0..8).map(|i| g.input(format!("i{i}"))).collect();
        let o = g.xor_many(&ins);
        g.output("o", o);
        g
    }

    #[test]
    fn matches_golden_on_random_stimuli() {
        let g = xor_tree();
        let mut ev = EventSim::new(&g);
        let mut gold = EaigSim::new(&g);
        let mut x = 12345u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ins: Vec<bool> = (0..8).map(|i| (x >> i) & 1 == 1).collect();
            assert_eq!(ev.cycle(&ins), gold.cycle(&ins));
        }
    }

    #[test]
    fn sequential_matches_golden() {
        let mut g = Eaig::new();
        let en = g.input("en");
        let q0 = g.ff(false);
        let q1 = g.ff(false);
        let nq0 = g.xor(q0, en);
        let carry = g.and(q0, en);
        let nq1 = g.xor(q1, carry);
        g.set_ff_next(q0, nq0);
        g.set_ff_next(q1, nq1);
        g.output("q0", q0);
        g.output("q1", q1);
        let mut ev = EventSim::new(&g);
        let mut gold = EaigSim::new(&g);
        for c in 0..32 {
            let en_v = c % 3 != 0;
            assert_eq!(ev.cycle(&[en_v]), gold.cycle(&[en_v]), "cycle {c}");
        }
    }

    #[test]
    fn quiet_cycles_cost_no_events() {
        let g = xor_tree();
        let mut ev = EventSim::new(&g);
        ev.cycle(&[true; 8]);
        let after_first = ev.events_total();
        for _ in 0..10 {
            ev.cycle(&[true; 8]);
        }
        assert_eq!(ev.events_total(), after_first);
    }

    #[test]
    fn activity_scales_events() {
        let g = xor_tree();
        let mut quiet = EventSim::new(&g);
        let mut busy = EventSim::new(&g);
        for c in 0..100 {
            quiet.cycle(&[false; 8]);
            let ins: Vec<bool> = (0..8).map(|i| (c + i) % 2 == 0).collect();
            busy.cycle(&ins);
        }
        assert!(busy.events_per_cycle() > quiet.events_per_cycle() * 2.0);
    }
}
