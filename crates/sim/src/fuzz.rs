//! Seeded random design generator for differential testing.
//!
//! Produces small synthesizable [`Module`]s — word-level datapaths with
//! registers and (optionally) both RAM flavors — from a single `u64`
//! seed, with **no external RNG dependency**: the generator is a
//! hand-rolled SplitMix64, per the workspace's fixed-seed test
//! convention. The same seed always yields the same design and the same
//! stimulus, so a failing seed printed by a fuzz test is a complete
//! reproducer.
//!
//! The intended consumer is the differential fuzz suite
//! (`crates/sim/tests/differential_fuzz.rs`): golden
//! [`crate::EaigSim`] vs the compiled design on the virtual GPU at 1
//! and N threads, bit-exact every cycle.

use gem_netlist::{Bits, Module, ModuleBuilder, NetId, ReadKind};

/// Deterministic SplitMix64 stream (same algorithm as the workspace's
/// property tests, packaged for reuse).
#[derive(Debug, Clone)]
pub struct FuzzRng(u64);

impl FuzzRng {
    /// Seeds the stream. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> FuzzRng {
        FuzzRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly random bit vector of the given width.
    pub fn bits(&mut self, width: u32) -> Bits {
        let mut v = Bits::zeros(width);
        for i in 0..width {
            v.set_bit(i, self.next_u64() & 1 == 1);
        }
        v
    }
}

/// Knobs for [`random_module`]. [`FuzzConfig::for_seed`] derives a
/// varied-but-bounded configuration from the seed itself, which is what
/// the fuzz suite uses.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Input ports (≥ 1; widths are drawn per port).
    pub inputs: usize,
    /// Random combinational operators appended to the net pool.
    pub ops: usize,
    /// Flip-flop registers (fed back from random nets).
    pub ffs: usize,
    /// Memories (each gets one write port and one read port).
    pub mems: usize,
    /// Output ports sampled from the net pool (≥ 1).
    pub outputs: usize,
    /// Widest net the generator will create.
    pub max_width: u32,
    /// Give every memory a second read port of the *opposite* kind, so
    /// each RAM exercises both the native sync-read path and the
    /// async-read polyfill at once.
    pub dual_read: bool,
}

impl FuzzConfig {
    /// Derives a configuration from a seed: small designs dominate
    /// (they compile fast, so the corpus covers more shapes), with the
    /// occasional wider/deeper one.
    pub fn for_seed(seed: u64) -> FuzzConfig {
        let mut r = FuzzRng::new(seed ^ 0xC0FFEE);
        FuzzConfig {
            inputs: 1 + r.below(4) as usize,
            ops: 6 + r.below(30) as usize,
            ffs: r.below(4) as usize,
            mems: r.below(3) as usize,
            outputs: 1 + r.below(3) as usize,
            max_width: 2 + r.below(15) as u32,
            dual_read: false,
        }
    }

    /// A RAM-heavy configuration: every design has at least one memory,
    /// and every memory carries both a sync and an async read port
    /// (`dual_read`). This is the corpus for the tier-1 RAM smoke — the
    /// plain [`FuzzConfig::for_seed`] corpus only has memories ~2/3 of
    /// the time and only one read kind per memory.
    pub fn ram_heavy(seed: u64) -> FuzzConfig {
        let mut r = FuzzRng::new(seed ^ 0x4A3);
        FuzzConfig {
            inputs: 1 + r.below(3) as usize,
            ops: 4 + r.below(16) as usize,
            ffs: r.below(3) as usize,
            mems: 1 + r.below(2) as usize,
            outputs: 1 + r.below(2) as usize,
            max_width: 2 + r.below(10) as u32,
            dual_read: true,
        }
    }
}

/// Generates a random valid module. Determinism contract: equal
/// `(seed, cfg)` always produces an identical module.
///
/// Construction is cycle-free by design — every operator only reads
/// nets that already exist, and feedback goes exclusively through
/// flip-flops or memories — so `finish()` cannot fail; the generator
/// would panic on a builder-validation bug rather than mask it.
pub fn random_module(seed: u64, cfg: &FuzzConfig) -> Module {
    let mut r = FuzzRng::new(seed);
    let mut b = ModuleBuilder::new("fuzz");
    // The pool of (net, width) pairs operators draw operands from.
    let mut pool: Vec<(NetId, u32)> = Vec::new();
    for i in 0..cfg.inputs.max(1) {
        let w = 1 + r.below(u64::from(cfg.max_width)) as u32;
        pool.push((b.input(format!("in{i}"), w), w));
    }
    // Registers are created first so combinational logic can read them;
    // their next-state nets are connected at the end, which is the only
    // feedback path and therefore keeps the module cycle-free.
    let mut ffs: Vec<(NetId, u32)> = Vec::new();
    for _ in 0..cfg.ffs {
        let w = 1 + r.below(u64::from(cfg.max_width)) as u32;
        let q = if r.chance(1, 2) {
            let init = r.bits(w);
            b.dff_init(init)
        } else {
            b.dff(w)
        };
        ffs.push((q, w));
        pool.push((q, w));
    }
    let pick = |r: &mut FuzzRng, pool: &[(NetId, u32)]| pool[r.below(pool.len() as u64) as usize];
    for _ in 0..cfg.ops {
        let (a, wa) = pick(&mut r, &pool);
        let (bn, _) = pick(&mut r, &pool);
        let bb = b.resize(bn, wa); // binary ops want matching widths
        let out = match r.below(13) {
            0 => (b.add(a, bb), wa),
            1 => (b.sub(a, bb), wa),
            2 => (b.and(a, bb), wa),
            3 => (b.or(a, bb), wa),
            4 => (b.xor(a, bb), wa),
            5 => (b.mul(a, bb), wa),
            6 => (b.eq(a, bb), 1),
            7 => (b.ult(a, bb), 1),
            8 => (b.not(a), wa),
            9 => {
                let sel = b.bit(bb, 0);
                let (f, _) = pick(&mut r, &pool);
                let f = b.resize(f, wa);
                (b.mux(sel, a, f), wa)
            }
            10 => {
                let lo = r.below(u64::from(wa)) as u32;
                let w = 1 + r.below(u64::from(wa - lo)) as u32;
                (b.slice(a, lo, w), w)
            }
            11 => {
                // A short shift amount keeps most shifts in range while
                // still exercising the overshift-to-zero path.
                let amt = b.resize(bb, 3);
                if r.chance(1, 2) {
                    (b.shl(a, amt), wa)
                } else {
                    (b.lshr(a, amt), wa)
                }
            }
            _ => {
                // Concat a random literal bit on top (widths drift up by
                // one; `ops` is bounded, so this stays small).
                let hi = b.lit(r.next_u64() & 1, 1);
                (b.concat(&[a, hi]), wa + 1)
            }
        };
        pool.push(out);
    }
    for (mi, _) in (0..cfg.mems).enumerate() {
        let words: u32 = if r.chance(1, 2) { 8 } else { 16 };
        let addr_bits = words.trailing_zeros();
        let w = 1 + r.below(u64::from(cfg.max_width)) as u32;
        let mem = b.memory(format!("m{mi}"), words, w);
        let (an, _) = pick(&mut r, &pool);
        let addr = b.resize(an, addr_bits);
        let (dn, _) = pick(&mut r, &pool);
        let data = b.resize(dn, w);
        let (en, _) = pick(&mut r, &pool);
        let we = b.bit(en, 0);
        b.write_port(mem, addr, data, we);
        let (ran, _) = pick(&mut r, &pool);
        let raddr = b.resize(ran, addr_bits);
        let kind = if r.chance(1, 2) {
            ReadKind::Sync
        } else {
            ReadKind::Async
        };
        let rd = b.read_port(mem, raddr, kind);
        pool.push((rd, w));
        if cfg.dual_read {
            let (ran2, _) = pick(&mut r, &pool);
            let raddr2 = b.resize(ran2, addr_bits);
            let other = match kind {
                ReadKind::Sync => ReadKind::Async,
                ReadKind::Async => ReadKind::Sync,
            };
            let rd2 = b.read_port(mem, raddr2, other);
            pool.push((rd2, w));
        }
    }
    // Close the register feedback loops from the full pool. Enables and
    // resets must be attached while the dff is still pending.
    for &(q, w) in &ffs {
        if r.chance(1, 3) {
            let (en, _) = pick(&mut r, &pool);
            let en = b.bit(en, 0);
            b.dff_enable(q, en);
        }
        if r.chance(1, 4) {
            let (rst, _) = pick(&mut r, &pool);
            let rst = b.bit(rst, 0);
            b.dff_reset(q, rst);
        }
        let (d, _) = pick(&mut r, &pool);
        let d = b.resize(d, w);
        b.connect_dff(q, d);
    }
    // Outputs: random pool picks, plus the last net so the deepest
    // logic cone is always observable (nothing dead-code-eliminates the
    // most interesting path).
    for i in 0..cfg.outputs.max(1) {
        let (n, _) = pick(&mut r, &pool);
        b.output(format!("out{i}"), n);
    }
    let last = pool.last().expect("pool is never empty").0;
    b.output("out_last", last);
    b.finish()
        .expect("generator construction is cycle-free and width-consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_module() {
        let cfg = FuzzConfig::for_seed(7);
        let a = random_module(7, &cfg);
        let b = random_module(7, &cfg);
        assert_eq!(a.cells().len(), b.cells().len());
        assert_eq!(
            a.outputs().map(|p| p.name.clone()).collect::<Vec<_>>(),
            b.outputs().map(|p| p.name.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corpus_is_valid_and_varied() {
        let mut shapes = std::collections::HashSet::new();
        for seed in 0..40 {
            let cfg = FuzzConfig::for_seed(seed);
            let m = random_module(seed, &cfg);
            assert!(m.outputs().count() >= 1, "seed {seed} lost its outputs");
            shapes.insert((m.cells().len(), m.inputs().count()));
        }
        assert!(
            shapes.len() > 20,
            "generator collapsed to too few shapes: {shapes:?}"
        );
    }

    #[test]
    fn ram_heavy_corpus_has_both_read_kinds_per_memory() {
        for seed in 0..15 {
            let cfg = FuzzConfig::ram_heavy(seed);
            assert!(cfg.mems >= 1, "seed {seed}: ram_heavy produced no mems");
            let m = random_module(seed, &cfg);
            assert_eq!(m.memories().len(), cfg.mems, "seed {seed}: lost a memory");
            for mem in m.memories() {
                // dual_read pairs every read with its opposite kind, so
                // each memory sees both the native sync path and the
                // async polyfill.
                let sync = mem
                    .read_ports
                    .iter()
                    .filter(|p| p.kind == ReadKind::Sync)
                    .count();
                let async_ = mem.read_ports.len() - sync;
                assert_eq!(sync, 1, "seed {seed} mem {}: sync ports", mem.name);
                assert_eq!(async_, 1, "seed {seed} mem {}: async ports", mem.name);
            }
        }
    }

    #[test]
    fn golden_model_accepts_every_corpus_member() {
        // Each random module must at least elaborate and simulate on the
        // word-level reference.
        for seed in 0..20 {
            let cfg = FuzzConfig::for_seed(seed);
            let m = random_module(seed, &cfg);
            let mut sim = crate::NetlistSim::new(&m);
            let mut r = FuzzRng::new(seed ^ 0xDEAD);
            for _ in 0..4 {
                for p in m.inputs() {
                    sim.set_input(&p.name, r.bits(m.width(p.net)));
                }
                sim.eval();
                sim.step();
            }
        }
    }
}
