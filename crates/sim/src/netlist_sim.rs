//! Word-level reference interpreter for RTL netlists.
//!
//! [`NetlistSim`] executes a [`gem_netlist::Module`] directly at word
//! level. Its purpose is to pin down RTL semantics *before* synthesis so
//! that `gem-synth` can be verified by co-simulation against [`crate::EaigSim`].

use gem_netlist::{Binary, Bits, CellKind, Module, NetId, ReadKind, Unary};

/// Cycle-accurate word-level simulator for a [`Module`].
///
/// Semantics match [`crate::EaigSim`]: single implicit clock, inputs
/// sampled per cycle, read-first memories, synchronous read data registered.
///
/// # Example
///
/// ```
/// use gem_netlist::{ModuleBuilder, Bits};
/// use gem_sim::NetlistSim;
///
/// let mut b = ModuleBuilder::new("inc");
/// let x = b.input("x", 8);
/// let one = b.lit(1, 8);
/// let y = b.add(x, one);
/// b.output("y", y);
/// let m = b.finish()?;
///
/// let mut sim = NetlistSim::new(&m);
/// sim.set_input("x", Bits::from_u64(41, 8));
/// sim.eval();
/// assert_eq!(sim.output("y").to_u64(), 42);
/// # Ok::<(), gem_netlist::ValidateError>(())
/// ```
#[derive(Debug)]
pub struct NetlistSim<'a> {
    m: &'a Module,
    /// Current value of every net.
    vals: Vec<Bits>,
    /// Flip-flop state per Dff cell (indexed by cell position).
    ff: Vec<Option<Bits>>,
    /// Memory contents.
    mem: Vec<Vec<Bits>>,
    /// Registered data of synchronous read ports: `mem_rdata[mem][port]`.
    mem_rdata: Vec<Vec<Bits>>,
    /// Evaluation order of combinational cells (topological).
    order: Vec<usize>,
    evaluated: bool,
}

impl<'a> NetlistSim<'a> {
    /// Creates a simulator with zeroed inputs and power-on state.
    pub fn new(m: &'a Module) -> Self {
        let vals: Vec<Bits> = m.nets().iter().map(|n| Bits::zeros(n.width)).collect();
        let ff: Vec<Option<Bits>> = m
            .cells()
            .iter()
            .map(|c| match &c.kind {
                CellKind::Dff { init, .. } => Some(init.clone()),
                _ => None,
            })
            .collect();
        let mem: Vec<Vec<Bits>> = m
            .memories()
            .iter()
            .map(|mm| vec![Bits::zeros(mm.width); mm.words as usize])
            .collect();
        let mem_rdata: Vec<Vec<Bits>> = m
            .memories()
            .iter()
            .map(|mm| vec![Bits::zeros(mm.width); mm.read_ports.len()])
            .collect();
        let order = topo_order(m);
        NetlistSim {
            m,
            vals,
            ff,
            mem,
            mem_rdata,
            order,
            evaluated: false,
        }
    }

    /// Sets the value of an input port.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or the width differs.
    pub fn set_input(&mut self, name: &str, v: Bits) {
        let p = self
            .m
            .port(name)
            .unwrap_or_else(|| panic!("no port named {name:?}"));
        assert_eq!(v.width(), self.m.width(p.net), "input width mismatch");
        self.vals[p.net.0 as usize] = v;
        self.evaluated = false;
    }

    /// Evaluates combinational logic for the current cycle.
    pub fn eval(&mut self) {
        // Seed state-driven nets.
        for (ci, c) in self.m.cells().iter().enumerate() {
            if let Some(state) = &self.ff[ci] {
                self.vals[c.out.0 as usize] = state.clone();
            }
        }
        for (mi, mm) in self.m.memories().iter().enumerate() {
            for (pi, rp) in mm.read_ports.iter().enumerate() {
                if rp.kind == ReadKind::Sync {
                    self.vals[rp.data.0 as usize] = self.mem_rdata[mi][pi].clone();
                }
            }
        }
        // Combinational cells in topological order, interleaved with async
        // read ports (handled via the order list's encoding).
        for &entry in &self.order.clone() {
            self.eval_entry(entry);
        }
        self.evaluated = true;
    }

    fn eval_entry(&mut self, entry: usize) {
        const ASYNC_BASE: usize = 1 << 32;
        if entry >= ASYNC_BASE {
            let packed = entry - ASYNC_BASE;
            let mi = packed >> 8;
            let pi = packed & 0xFF;
            let mm = &self.m.memories()[mi];
            let rp = &mm.read_ports[pi];
            let addr = self.vals[rp.addr.0 as usize].to_u64() as usize;
            let word = if addr < mm.words as usize {
                self.mem[mi][addr].clone()
            } else {
                Bits::zeros(mm.width)
            };
            self.vals[rp.data.0 as usize] = word;
            return;
        }
        let c = &self.m.cells()[entry];
        if matches!(c.kind, CellKind::Dff { .. }) {
            return;
        }
        let v = self.eval_cell(&c.kind, c.out);
        self.vals[c.out.0 as usize] = v;
    }

    fn eval_cell(&self, kind: &CellKind, out: NetId) -> Bits {
        let get = |n: NetId| &self.vals[n.0 as usize];
        let ow = self.m.width(out);
        match kind {
            CellKind::Const { value } => value.clone(),
            CellKind::Unary { op, a } => {
                let av = get(*a);
                match op {
                    Unary::Not => av.not(),
                    Unary::Neg => Bits::zeros(av.width()).sub(av),
                    Unary::ReduceAnd => Bits::from(av.reduce_and()),
                    Unary::ReduceOr => Bits::from(av.reduce_or()),
                    Unary::ReduceXor => Bits::from(av.reduce_xor()),
                }
            }
            CellKind::Binary { op, a, b } => {
                let (av, bv) = (get(*a), get(*b));
                match op {
                    Binary::And => av.and(bv),
                    Binary::Or => av.or(bv),
                    Binary::Xor => av.xor(bv),
                    Binary::Add => av.add(bv),
                    Binary::Sub => av.sub(bv),
                    Binary::Mul => av.mul(bv),
                    Binary::Eq => Bits::from(av == bv),
                    Binary::Ult => Bits::from(av.ult(bv)),
                    Binary::Shl | Binary::Lshr => {
                        // Amounts >= width produce zero.
                        let amt = bv.to_u64();
                        let big = bv.iter().skip(64).any(|b| b) || amt >= av.width() as u64;
                        if big {
                            Bits::zeros(av.width())
                        } else if matches!(op, Binary::Shl) {
                            av.shl(amt as u32)
                        } else {
                            av.lshr(amt as u32)
                        }
                    }
                }
            }
            CellKind::Mux { sel, t, f } => {
                if get(*sel).bit(0) {
                    get(*t).clone()
                } else {
                    get(*f).clone()
                }
            }
            CellKind::Slice { a, lo } => get(*a).slice(*lo, ow),
            CellKind::Concat { parts } => {
                let mut acc = Bits::zeros(0);
                for p in parts {
                    acc = acc.concat(get(*p));
                }
                acc
            }
            CellKind::Dff { .. } => unreachable!("sequential cell in eval_cell"),
        }
    }

    /// Value of an output port (after [`eval`](Self::eval)).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or `eval` has not run.
    pub fn output(&self, name: &str) -> Bits {
        assert!(self.evaluated, "call eval() before reading outputs");
        let p = self
            .m
            .port(name)
            .unwrap_or_else(|| panic!("no port named {name:?}"));
        self.vals[p.net.0 as usize].clone()
    }

    /// Value of any net (after [`eval`](Self::eval)).
    pub fn net(&self, id: NetId) -> &Bits {
        &self.vals[id.0 as usize]
    }

    /// Advances one clock edge.
    pub fn step(&mut self) {
        if !self.evaluated {
            self.eval();
        }
        // Flip-flops.
        let mut new_ff = self.ff.clone();
        for (ci, c) in self.m.cells().iter().enumerate() {
            if let CellKind::Dff {
                d,
                init,
                enable,
                reset,
            } = &c.kind
            {
                let cur = self.ff[ci].clone().expect("dff has state");
                let dv = self.vals[d.0 as usize].clone();
                let en = enable.is_none_or(|e| self.vals[e.0 as usize].bit(0));
                let rst = reset.is_some_and(|r| self.vals[r.0 as usize].bit(0));
                let next = if rst {
                    init.clone()
                } else if en {
                    dv
                } else {
                    cur
                };
                new_ff[ci] = Some(next);
            }
        }
        // Memories: reads capture pre-write contents (read-first).
        for (mi, mm) in self.m.memories().iter().enumerate() {
            for (pi, rp) in mm.read_ports.iter().enumerate() {
                if rp.kind == ReadKind::Sync {
                    let addr = self.vals[rp.addr.0 as usize].to_u64() as usize;
                    self.mem_rdata[mi][pi] = if addr < mm.words as usize {
                        self.mem[mi][addr].clone()
                    } else {
                        Bits::zeros(mm.width)
                    };
                }
            }
            let writes: Vec<(usize, Bits)> = mm
                .write_ports
                .iter()
                .filter(|wp| self.vals[wp.enable.0 as usize].bit(0))
                .map(|wp| {
                    (
                        self.vals[wp.addr.0 as usize].to_u64() as usize,
                        self.vals[wp.data.0 as usize].clone(),
                    )
                })
                .collect();
            for (addr, data) in writes {
                if addr < mm.words as usize {
                    self.mem[mi][addr] = data;
                }
            }
        }
        self.ff = new_ff;
        self.evaluated = false;
    }

    /// Applies inputs (by port order), evaluates, collects outputs, clocks.
    pub fn cycle(&mut self, inputs: &[(&str, Bits)]) -> Vec<(String, Bits)> {
        for (name, v) in inputs {
            self.set_input(name, v.clone());
        }
        self.eval();
        let outs = self
            .m
            .outputs()
            .map(|p| (p.name.clone(), self.vals[p.net.0 as usize].clone()))
            .collect();
        self.step();
        outs
    }

    /// Reads a memory word (for test setup and inspection).
    pub fn mem_word(&self, mem: usize, addr: usize) -> &Bits {
        &self.mem[mem][addr]
    }

    /// Overwrites a memory word (e.g. to preload a program image).
    pub fn set_mem_word(&mut self, mem: usize, addr: usize, v: Bits) {
        assert_eq!(v.width(), self.m.memories()[mem].width);
        self.mem[mem][addr] = v;
    }
}

/// Topological order of combinational work items. Plain cell indexes are
/// cells; indexes with bit 32 set encode async read ports
/// (`mem_index << 8 | port_index`).
fn topo_order(m: &Module) -> Vec<usize> {
    const ASYNC_BASE: usize = 1 << 32;
    // net -> producing entry
    let mut producer: Vec<Option<usize>> = vec![None; m.nets().len()];
    for (ci, c) in m.cells().iter().enumerate() {
        if !matches!(c.kind, CellKind::Dff { .. }) {
            producer[c.out.0 as usize] = Some(ci);
        }
    }
    for (mi, mm) in m.memories().iter().enumerate() {
        for (pi, rp) in mm.read_ports.iter().enumerate() {
            if rp.kind == ReadKind::Async {
                producer[rp.data.0 as usize] = Some(ASYNC_BASE + (mi << 8) + pi);
            }
        }
    }
    let entry_deps = |entry: usize| -> Vec<NetId> {
        if entry >= ASYNC_BASE {
            let packed = entry - ASYNC_BASE;
            let (mi, pi) = (packed >> 8, packed & 0xFF);
            vec![m.memories()[mi].read_ports[pi].addr]
        } else {
            m.cell_inputs(&m.cells()[entry])
        }
    };
    let mut order = Vec::new();
    let mut visited: std::collections::HashSet<usize> = std::collections::HashSet::new();
    // DFS from all entries.
    let all_entries: Vec<usize> = producer.iter().flatten().copied().collect();
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for &e in &all_entries {
        if visited.contains(&e) {
            continue;
        }
        stack.push((e, 0));
        while let Some(&mut (entry, ref mut child)) = stack.last_mut() {
            let deps = entry_deps(entry);
            if *child < deps.len() {
                let dep_net = deps[*child];
                *child += 1;
                if let Some(p) = producer[dep_net.0 as usize] {
                    if !visited.contains(&p) && !stack.iter().any(|&(e2, _)| e2 == p) {
                        stack.push((p, 0));
                    }
                }
            } else {
                if visited.insert(entry) {
                    order.push(entry);
                }
                stack.pop();
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_netlist::ModuleBuilder;

    #[test]
    fn adder_counts() {
        let mut b = ModuleBuilder::new("m");
        let x = b.input("x", 8);
        let one = b.lit(1, 8);
        let q = b.dff(8);
        let sum = b.add(q, x);
        let _ = one;
        b.connect_dff(q, sum);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mut s = NetlistSim::new(&m);
        for _ in 0..5 {
            s.cycle(&[("x", Bits::from_u64(3, 8))]);
        }
        s.eval();
        assert_eq!(s.output("q").to_u64(), 15);
    }

    #[test]
    fn enable_and_reset() {
        let mut b = ModuleBuilder::new("m");
        let d = b.input("d", 4);
        let en = b.input("en", 1);
        let rst = b.input("rst", 1);
        let q = b.dff_init(Bits::from_u64(7, 4));
        b.dff_enable(q, en);
        b.dff_reset(q, rst);
        b.connect_dff(q, d);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mut s = NetlistSim::new(&m);
        s.eval();
        assert_eq!(s.output("q").to_u64(), 7); // init
                                               // enable off: hold
        s.cycle(&[
            ("d", Bits::from_u64(3, 4)),
            ("en", Bits::from_u64(0, 1)),
            ("rst", Bits::from_u64(0, 1)),
        ]);
        s.eval();
        assert_eq!(s.output("q").to_u64(), 7);
        // enable on: load
        s.cycle(&[("d", Bits::from_u64(3, 4)), ("en", Bits::from_u64(1, 1))]);
        s.eval();
        assert_eq!(s.output("q").to_u64(), 3);
        // reset wins
        s.cycle(&[("rst", Bits::from_u64(1, 1))]);
        s.eval();
        assert_eq!(s.output("q").to_u64(), 7);
    }

    #[test]
    fn sync_memory_read_first() {
        let mut b = ModuleBuilder::new("m");
        let addr = b.input("addr", 3);
        let data = b.input("data", 8);
        let we = b.input("we", 1);
        let mem = b.memory("ram", 8, 8);
        b.write_port(mem, addr, data, we);
        let q = b.read_port(mem, addr, gem_netlist::ReadKind::Sync);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mut s = NetlistSim::new(&m);
        // write 0xAA at 2 while reading 2
        s.cycle(&[
            ("addr", Bits::from_u64(2, 3)),
            ("data", Bits::from_u64(0xAA, 8)),
            ("we", Bits::from_u64(1, 1)),
        ]);
        s.eval();
        assert_eq!(s.output("q").to_u64(), 0, "read-first returns old word");
        s.cycle(&[("we", Bits::from_u64(0, 1)), ("addr", Bits::from_u64(2, 3))]);
        s.eval();
        assert_eq!(s.output("q").to_u64(), 0xAA);
    }

    #[test]
    fn async_memory_combinational() {
        let mut b = ModuleBuilder::new("m");
        let waddr = b.input("waddr", 3);
        let raddr = b.input("raddr", 3);
        let data = b.input("data", 8);
        let we = b.input("we", 1);
        let mem = b.memory("rf", 8, 8);
        b.write_port(mem, waddr, data, we);
        let q = b.read_port(mem, raddr, gem_netlist::ReadKind::Async);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mut s = NetlistSim::new(&m);
        s.cycle(&[
            ("waddr", Bits::from_u64(5, 3)),
            ("data", Bits::from_u64(0x5A, 8)),
            ("we", Bits::from_u64(1, 1)),
        ]);
        s.set_input("we", Bits::from_u64(0, 1));
        s.set_input("raddr", Bits::from_u64(5, 3));
        s.eval();
        assert_eq!(s.output("q").to_u64(), 0x5A, "async read is same-cycle");
    }

    #[test]
    fn variable_shift_saturates() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 8);
        let sh = b.input("sh", 8);
        let y = b.shl(a, sh);
        b.output("y", y);
        let m = b.finish().unwrap();
        let mut s = NetlistSim::new(&m);
        s.set_input("a", Bits::from_u64(0xFF, 8));
        s.set_input("sh", Bits::from_u64(200, 8));
        s.eval();
        assert_eq!(s.output("y").to_u64(), 0);
    }
}
