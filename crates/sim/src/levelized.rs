//! Full-cycle levelized simulation ("Verilator" stand-in).
//!
//! Verilator compiles the design into straight-line code that evaluates
//! the whole circuit every cycle. [`LevelizedSim`] mimics that: a flat,
//! cache-friendly array of AND operations in level order, executed
//! unconditionally. The multithreaded mode splits each level across a
//! persistent worker pool with a barrier per level — reproducing the
//! scalability ceiling the paper measured ("16-threaded Verilator is only
//! 80%–95% the speed of 8 threads"): barriers per level dominate once the
//! per-thread slice of a level gets small.

use gem_aig::{Eaig, Lit, Node, RAM_ADDR_BITS};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// A futex-free cyclic barrier (atomic counter + generation, spinning with
/// periodic yields). Multi-waiter futex wake-ups proved unreliable inside
/// the micro-VM kernels this workspace runs on, and a spin-yield barrier
/// is also the cheaper primitive for one rendezvous per logic level.
#[derive(Debug)]
struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    threads: usize,
}

impl SpinBarrier {
    fn new(threads: usize) -> Self {
        SpinBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            threads,
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.threads {
            self.count.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins > 64 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// One compiled AND op: output slot and the two operand literal codes.
#[derive(Debug, Clone, Copy)]
struct Op {
    out: u32,
    a_code: u32,
    b_code: u32,
}

/// Shared, immutable compiled form plus the value array.
#[derive(Debug)]
struct Compiled {
    /// Ops grouped by level (level 1 first).
    levels: Vec<Vec<Op>>,
    /// One value byte per node (0/1).
    vals: Vec<AtomicU8>,
}

impl Compiled {
    #[inline]
    fn read_code(&self, code: u32) -> bool {
        (self.vals[(code >> 1) as usize].load(Ordering::Relaxed) ^ (code & 1) as u8) & 1 == 1
    }

    /// Evaluates thread `tid`'s slice of every level, with a barrier per
    /// level.
    fn eval_slices(&self, tid: usize, threads: usize, barrier: &SpinBarrier) {
        for level in &self.levels {
            let chunk = level.len().div_ceil(threads);
            let lo = (tid * chunk).min(level.len());
            let hi = ((tid + 1) * chunk).min(level.len());
            for op in &level[lo..hi] {
                let v = self.read_code(op.a_code) && self.read_code(op.b_code);
                self.vals[op.out as usize].store(v as u8, Ordering::Relaxed);
            }
            barrier.wait();
        }
    }
}

/// Full-cycle levelized simulator for an [`Eaig`].
///
/// # Example
///
/// ```
/// use gem_aig::Eaig;
/// use gem_sim::LevelizedSim;
///
/// let mut g = Eaig::new();
/// let a = g.input("a");
/// let b = g.input("b");
/// let o = g.or(a, b);
/// g.output("o", o);
/// let mut sim = LevelizedSim::new(&g, 1);
/// assert!(sim.cycle(&[true, false])[0]);
/// ```
#[derive(Debug)]
pub struct LevelizedSim<'a> {
    g: &'a Eaig,
    shared: Arc<Compiled>,
    ff: Vec<bool>,
    ram: Vec<Box<[u32]>>,
    ram_rdata: Vec<u32>,
    threads: usize,
    barriers_per_cycle: u64,
}

impl<'a> LevelizedSim<'a> {
    /// Compiles `g` for execution on `threads` worker threads (1 =
    /// single-threaded).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(g: &'a Eaig, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        let node_levels = g.node_levels();
        let live = g.live_nodes();
        let depth = node_levels.iter().copied().max().unwrap_or(0) as usize;
        let mut levels: Vec<Vec<Op>> = vec![Vec::new(); depth + 1];
        for (i, n) in g.nodes().iter().enumerate() {
            if !live[i] {
                continue;
            }
            if let Node::And(a, b) = n {
                levels[node_levels[i] as usize].push(Op {
                    out: i as u32,
                    a_code: a.code(),
                    b_code: b.code(),
                });
            }
        }
        levels.retain(|l| !l.is_empty());
        let n_levels = levels.len();
        let shared = Arc::new(Compiled {
            levels,
            vals: (0..g.len()).map(|_| AtomicU8::new(0)).collect(),
        });
        LevelizedSim {
            ff: g.ffs().iter().map(|f| f.init).collect(),
            ram: g
                .rams()
                .iter()
                .map(|_| vec![0u32; 1 << RAM_ADDR_BITS].into_boxed_slice())
                .collect(),
            ram_rdata: vec![0; g.rams().len()],
            threads,
            barriers_per_cycle: if threads > 1 { n_levels as u64 } else { 0 },
            shared,
            g,
        }
    }

    fn lit(&self, l: Lit) -> bool {
        self.shared.read_code(l.code())
    }

    /// Runs one cycle: applies inputs, evaluates everything, returns
    /// outputs, clocks.
    pub fn cycle(&mut self, inputs: &[bool]) -> Vec<bool> {
        // Baseline timelines sit next to the GEM engine's in trace
        // exports, making speed comparisons visual.
        let _span = if gem_telemetry::span::enabled() {
            let mut sp = gem_telemetry::span::span("levelized_cycle", "sim");
            sp.arg("levels", self.shared.levels.len() as u64)
                .arg("threads", self.threads as u64);
            Some(sp)
        } else {
            None
        };
        // Sources.
        for (i, (_, id)) in self.g.inputs().iter().enumerate() {
            self.shared.vals[id.0 as usize].store(inputs[i] as u8, Ordering::Relaxed);
        }
        for (i, f) in self.g.ffs().iter().enumerate() {
            self.shared.vals[f.out.0 as usize].store(self.ff[i] as u8, Ordering::Relaxed);
        }
        for (ri, r) in self.g.rams().iter().enumerate() {
            let word = self.ram_rdata[ri];
            for (bit, id) in r.out.iter().enumerate() {
                self.shared.vals[id.0 as usize].store(((word >> bit) & 1) as u8, Ordering::Relaxed);
            }
        }
        if self.threads == 1 {
            for level in &self.shared.levels {
                for op in level {
                    let v = self.shared.read_code(op.a_code) && self.shared.read_code(op.b_code);
                    self.shared.vals[op.out as usize].store(v as u8, Ordering::Relaxed);
                }
            }
        } else {
            // Scoped helpers per cycle: no persistent pool, no shutdown
            // handshake; rendezvous per level on the spin barrier.
            let barrier = SpinBarrier::new(self.threads);
            let shared = &self.shared;
            let threads = self.threads;
            std::thread::scope(|scope| {
                for tid in 1..threads {
                    let barrier = &barrier;
                    scope.spawn(move || shared.eval_slices(tid, threads, barrier));
                }
                shared.eval_slices(0, threads, &barrier);
            });
        }
        let outs: Vec<bool> = self.g.outputs().iter().map(|(_, l)| self.lit(*l)).collect();
        // Clock edge.
        let new_ff: Vec<bool> = self.g.ffs().iter().map(|f| self.lit(f.next)).collect();
        for (ri, r) in self.g.rams().iter().enumerate() {
            let raddr = self.addr_of(&r.read_addr);
            self.ram_rdata[ri] = self.ram[ri][raddr];
            if self.lit(r.write_en) {
                let waddr = self.addr_of(&r.write_addr);
                let mut w = 0u32;
                for (bit, &l) in r.write_data.iter().enumerate() {
                    if self.lit(l) {
                        w |= 1 << bit;
                    }
                }
                self.ram[ri][waddr] = w;
            }
        }
        self.ff = new_ff;
        outs
    }

    fn addr_of(&self, bits: &[Lit; RAM_ADDR_BITS]) -> usize {
        let mut a = 0usize;
        for (i, &l) in bits.iter().enumerate() {
            if self.lit(l) {
                a |= 1 << i;
            }
        }
        a
    }

    /// Number of synchronization barriers per simulated cycle (0 when
    /// single-threaded). One per logic level — the overhead the boomerang
    /// executor is designed to crush.
    pub fn barriers_per_cycle(&self) -> u64 {
        self.barriers_per_cycle
    }

    /// Number of compiled levels.
    pub fn num_levels(&self) -> usize {
        self.shared.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::EaigSim;

    fn random_logic(seed: u64) -> Eaig {
        let mut g = Eaig::new();
        let mut lits: Vec<Lit> = (0..12).map(|i| g.input(format!("i{i}"))).collect();
        let mut x = seed;
        for _ in 0..80 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = lits[(x >> 8) as usize % lits.len()];
            let b = lits[(x >> 24) as usize % lits.len()];
            let l = match (x >> 40) % 3 {
                0 => g.and(a, b),
                1 => g.or(a, b),
                _ => g.xor(a, b),
            };
            lits.push(l);
        }
        let q = g.ff(false);
        let last = *lits.last().expect("nonempty");
        g.set_ff_next(q, last);
        g.output("o", last);
        g.output("q", q);
        g
    }

    #[test]
    fn single_thread_matches_golden() {
        let g = random_logic(7);
        let mut lv = LevelizedSim::new(&g, 1);
        let mut gold = EaigSim::new(&g);
        let mut x = 999u64;
        for _ in 0..50 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ins: Vec<bool> = (0..12).map(|i| (x >> i) & 1 == 1).collect();
            assert_eq!(lv.cycle(&ins), gold.cycle(&ins));
        }
    }

    #[test]
    fn multi_thread_matches_golden() {
        let g = random_logic(13);
        let mut lv = LevelizedSim::new(&g, 4);
        let mut gold = EaigSim::new(&g);
        let mut x = 31u64;
        for _ in 0..30 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ins: Vec<bool> = (0..12).map(|i| (x >> i) & 1 == 1).collect();
            assert_eq!(lv.cycle(&ins), gold.cycle(&ins));
        }
    }

    #[test]
    fn barrier_count_reported() {
        let g = random_logic(3);
        let st = LevelizedSim::new(&g, 1);
        assert_eq!(st.barriers_per_cycle(), 0);
        let mt = LevelizedSim::new(&g, 2);
        assert_eq!(mt.barriers_per_cycle(), mt.num_levels() as u64);
        assert!(mt.num_levels() > 1);
    }

    #[test]
    fn workers_shut_down_cleanly() {
        let g = random_logic(5);
        for _ in 0..3 {
            let mut s = LevelizedSim::new(&g, 3);
            s.cycle(&[false; 12]);
        } // drop must join without hanging
    }
}
