//! Golden-model interpreter over the E-AIG.
//!
//! [`EaigSim`] evaluates every node every cycle in topological order. It is
//! deliberately simple — it exists to define the semantics all faster
//! engines (GEM itself, the baselines) must agree with.

use gem_aig::{Eaig, Lit, Node, RAM_ADDR_BITS};

/// Cycle-accurate reference simulator for an [`Eaig`].
///
/// # Example
///
/// ```
/// use gem_aig::Eaig;
/// use gem_sim::EaigSim;
///
/// let mut g = Eaig::new();
/// let a = g.input("a");
/// let q = g.ff(false);
/// g.set_ff_next(q, a);          // one-cycle delay line
/// g.output("q", q);
///
/// let mut sim = EaigSim::new(&g);
/// sim.set_input(0, true);
/// sim.eval();
/// assert!(!sim.output_by_name("q").unwrap()); // not yet clocked
/// sim.step();
/// sim.eval();
/// assert!(sim.output_by_name("q").unwrap());
/// ```
#[derive(Debug)]
pub struct EaigSim<'a> {
    g: &'a Eaig,
    /// Current value of every node (valid after [`eval`](Self::eval)).
    vals: Vec<bool>,
    /// Flip-flop state.
    ff: Vec<bool>,
    /// RAM contents, one 8192-word bank per block.
    ram: Vec<Box<[u32]>>,
    /// Registered read data per RAM block.
    ram_rdata: Vec<u32>,
    /// Primary input values.
    inputs: Vec<bool>,
    evaluated: bool,
}

impl<'a> EaigSim<'a> {
    /// Creates a simulator with all state at its power-on values.
    pub fn new(g: &'a Eaig) -> Self {
        EaigSim {
            vals: vec![false; g.len()],
            ff: g.ffs().iter().map(|f| f.init).collect(),
            ram: g
                .rams()
                .iter()
                .map(|_| vec![0u32; 1 << RAM_ADDR_BITS].into_boxed_slice())
                .collect(),
            ram_rdata: vec![0; g.rams().len()],
            inputs: vec![false; g.inputs().len()],
            evaluated: false,
            g,
        }
    }

    /// Sets primary input `idx` (creation order) for the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_input(&mut self, idx: usize, v: bool) {
        self.inputs[idx] = v;
        self.evaluated = false;
    }

    /// Sets an input by name; returns `false` if no such input exists.
    pub fn set_input_by_name(&mut self, name: &str, v: bool) -> bool {
        if let Some(idx) = self.g.inputs().iter().position(|(n, _)| n == name) {
            self.set_input(idx, v);
            true
        } else {
            false
        }
    }

    /// Evaluates the combinational logic for the current cycle.
    pub fn eval(&mut self) {
        for (i, n) in self.g.nodes().iter().enumerate() {
            self.vals[i] = match *n {
                Node::Const0 => false,
                Node::Input(idx) => self.inputs[idx as usize],
                Node::And(a, b) => self.lit_from(a) && self.lit_from(b),
                Node::FfOut(ff) => self.ff[ff.0 as usize],
                Node::RamOut { ram, bit } => (self.ram_rdata[ram.0 as usize] >> bit) & 1 == 1,
            };
        }
        self.evaluated = true;
    }

    fn lit_from(&self, l: Lit) -> bool {
        self.vals[l.node().0 as usize] ^ l.is_inverted()
    }

    /// Value of a literal (combinational, after [`eval`](Self::eval)).
    ///
    /// # Panics
    ///
    /// Panics if called before `eval` in the current cycle.
    pub fn lit(&self, l: Lit) -> bool {
        assert!(self.evaluated, "call eval() before reading values");
        self.lit_from(l)
    }

    /// Value of primary output `idx` (creation order).
    pub fn output(&self, idx: usize) -> bool {
        self.lit(self.g.outputs()[idx].1)
    }

    /// Value of a named primary output.
    pub fn output_by_name(&self, name: &str) -> Option<bool> {
        self.g
            .outputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, l)| self.lit(*l))
    }

    /// Advances one clock edge: flip-flops load their next-state values and
    /// RAM blocks perform their (read-first) port operations.
    ///
    /// Calls [`eval`](Self::eval) internally if inputs changed since the
    /// last evaluation.
    pub fn step(&mut self) {
        if !self.evaluated {
            self.eval();
        }
        let new_ff: Vec<bool> = self.g.ffs().iter().map(|f| self.lit_from(f.next)).collect();
        for (ri, r) in self.g.rams().iter().enumerate() {
            let raddr = self.addr_of(&r.read_addr);
            // Read-first: capture before the write.
            self.ram_rdata[ri] = self.ram[ri][raddr];
            if self.lit_from(r.write_en) {
                let waddr = self.addr_of(&r.write_addr);
                let mut w = 0u32;
                for (bit, &l) in r.write_data.iter().enumerate() {
                    if self.lit_from(l) {
                        w |= 1 << bit;
                    }
                }
                self.ram[ri][waddr] = w;
            }
        }
        self.ff = new_ff;
        self.evaluated = false;
    }

    fn addr_of(&self, bits: &[Lit; RAM_ADDR_BITS]) -> usize {
        let mut a = 0usize;
        for (i, &l) in bits.iter().enumerate() {
            if self.lit_from(l) {
                a |= 1 << i;
            }
        }
        a
    }

    /// Runs one full cycle: applies `inputs` (creation order), evaluates,
    /// returns all outputs, then clocks.
    pub fn cycle(&mut self, inputs: &[bool]) -> Vec<bool> {
        for (i, &v) in inputs.iter().enumerate() {
            self.inputs[i] = v;
        }
        self.eval();
        let outs = (0..self.g.outputs().len())
            .map(|i| self.output(i))
            .collect();
        self.step();
        outs
    }

    /// Direct access to a RAM word (for test setup and inspection).
    pub fn ram_word(&self, ram: usize, addr: usize) -> u32 {
        self.ram[ram][addr]
    }

    /// Overwrites a RAM word (for test setup, e.g. program loading).
    pub fn set_ram_word(&mut self, ram: usize, addr: usize, value: u32) {
        self.ram[ram][addr] = value;
    }

    /// Current flip-flop state bits.
    pub fn ff_state(&self) -> &[bool] {
        &self.ff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_aig::{Lit, RAM_ADDR_BITS, RAM_DATA_BITS};

    #[test]
    fn combinational_and() {
        let mut g = Eaig::new();
        let a = g.input("a");
        let b = g.input("b");
        let x = g.and(a, b);
        g.output("x", x);
        let mut s = EaigSim::new(&g);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            s.set_input(0, va);
            s.set_input(1, vb);
            s.eval();
            assert_eq!(s.output(0), va && vb);
        }
    }

    #[test]
    fn toggler_flips_every_cycle() {
        let mut g = Eaig::new();
        let q = g.ff(false);
        g.set_ff_next(q, q.flip());
        g.output("q", q);
        let mut s = EaigSim::new(&g);
        let seq: Vec<bool> = (0..6).map(|_| s.cycle(&[])[0]).collect();
        assert_eq!(seq, [false, true, false, true, false, true]);
    }

    #[test]
    fn ff_init_value_respected() {
        let mut g = Eaig::new();
        let q = g.ff(true);
        g.set_ff_next(q, q);
        g.output("q", q);
        let mut s = EaigSim::new(&g);
        s.eval();
        assert!(s.output(0));
    }

    #[test]
    fn ram_write_then_read() {
        let mut g = Eaig::new();
        let r = g.ram();
        let addr_in = g.input("addr0");
        let we = g.input("we");
        let data0 = g.input("d0");
        let mut ra = [Lit::FALSE; RAM_ADDR_BITS];
        ra[0] = addr_in;
        let mut wd = [Lit::FALSE; RAM_DATA_BITS];
        wd[0] = data0;
        g.set_ram_ports(r, ra, ra, wd, we);
        g.output("q0", g.ram_out(r, 0));

        let mut s = EaigSim::new(&g);
        // Cycle 0: write 1 to address 1.
        let o = s.cycle(&[true, true, true]);
        assert!(!o[0]); // nothing read yet
                        // Cycle 1: read address 1 (no write). Read data appears next cycle.
        let o = s.cycle(&[true, false, false]);
        assert!(!o[0]); // rdata register still holds cycle-0 read (of old 0)

        // Actually cycle 1's *output* reflects the read performed at the
        // end of cycle 0, which captured mem[1] before the write → 0.
        // Cycle 2 reflects the read at end of cycle 1 → the written 1.
        let o = s.cycle(&[true, false, false]);
        assert!(o[0]);
    }

    #[test]
    fn ram_read_first_semantics() {
        let mut g = Eaig::new();
        let r = g.ram();
        let we = g.input("we");
        let d0 = g.input("d0");
        let mut wd = [Lit::FALSE; RAM_DATA_BITS];
        wd[0] = d0;
        // Read and write both at address 0.
        g.set_ram_ports(
            r,
            [Lit::FALSE; RAM_ADDR_BITS],
            [Lit::FALSE; RAM_ADDR_BITS],
            wd,
            we,
        );
        g.output("q0", g.ram_out(r, 0));
        let mut s = EaigSim::new(&g);
        // Cycle 0: write 1 to addr 0 while reading addr 0 → read sees old 0.
        s.cycle(&[true, true]);
        let o = s.cycle(&[false, false]);
        assert!(!o[0], "read-first must capture the pre-write word");
        let o = s.cycle(&[false, false]);
        assert!(o[0], "subsequent read sees the written word");
    }

    #[test]
    fn named_access() {
        let mut g = Eaig::new();
        let a = g.input("a");
        g.output("y", a.flip());
        let mut s = EaigSim::new(&g);
        assert!(s.set_input_by_name("a", false));
        assert!(!s.set_input_by_name("zzz", false));
        s.eval();
        assert_eq!(s.output_by_name("y"), Some(true));
        assert_eq!(s.output_by_name("zzz"), None);
    }
}
