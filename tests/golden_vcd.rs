//! Golden waveform regression corpus for the example designs.
//!
//! Every design under `examples/designs/` is compiled (verifier on),
//! driven with a fixed seeded stimulus, and its output waveform dumped
//! as VCD. The FNV-1a digest of that text is pinned under
//! `tests/golden/<design>.digest` — any change to synthesis, placement,
//! encoding, or the simulator that alters observable behavior shows up
//! as a digest mismatch naming the design.
//!
//! Every waveform is produced under **both** execution backends
//! (interpreted and compiled) and must hash identically: the backends
//! share one golden corpus, there is no per-backend digest set. Blessing
//! writes the interpreted digest; the compiled run is compared against
//! it, never blessed from.
//!
//! To re-bless after an *intentional* behavioral change:
//!
//! ```text
//! GEM_BLESS=1 cargo test --test golden_vcd
//! ```
//!
//! then review the `.digest` diff like any other golden-file change.

use gem_core::{compile, CompileOptions, ExecBackend, GemSimulator};
use gem_netlist::vcd::VcdWriter;
use gem_netlist::verilog;
use gem_sim::FuzzRng;
use std::path::Path;

const CYCLES: u64 = 48;

/// FNV-1a over the VCD text: stable, dependency-free, and mismatch
/// messages stay short (a full-text golden would drown the diff).
fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Compiles one design and records its outputs for [`CYCLES`] cycles of
/// seeded random stimulus into a VCD document, under the given backend.
fn waveform(path: &Path, backend: ExecBackend) -> String {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let name = path.file_stem().unwrap().to_string_lossy().into_owned();
    let module = verilog::parse(&src).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
    let opts = CompileOptions {
        core_width: 256,
        target_parts: 4,
        ..Default::default()
    };
    let compiled = compile(&module, &opts).unwrap_or_else(|e| panic!("{name}: compile: {e}"));
    assert!(compiled.report.verified, "{name}: verifier did not run");

    let mut w = VcdWriter::new(&name);
    let vars: Vec<_> = module
        .outputs()
        .map(|p| (p.name.clone(), w.add_var(&p.name, module.width(p.net))))
        .collect();
    w.begin();
    let mut sim = GemSimulator::new(&compiled).unwrap_or_else(|e| panic!("{name}: {e}"));
    sim.set_backend(backend);
    // The stimulus seed is part of the golden contract — changing it
    // invalidates every digest.
    let mut stim = FuzzRng::new(0x601D);
    for cycle in 0..CYCLES {
        for p in module.inputs() {
            sim.set_input(&p.name, stim.bits(module.width(p.net)));
        }
        sim.step();
        w.timestamp(cycle);
        for (pname, var) in &vars {
            w.change(*var, &sim.output(pname));
        }
    }
    w.finish()
}

/// The same waveform extracted from lane 0 of a full-width 64-lane
/// batch: lane 0 replays the pinned golden stimulus while every other
/// lane runs its own unrelated stream. The digest must match the scalar
/// run's — lane batching must not perturb observable behavior, at any
/// machine word width.
fn lane_zero_waveform(path: &Path, backend: ExecBackend) -> String {
    const LANES: u32 = GemSimulator::MAX_LANES;
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let name = path.file_stem().unwrap().to_string_lossy().into_owned();
    let module = verilog::parse(&src).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
    let opts = CompileOptions {
        core_width: 256,
        target_parts: 4,
        ..Default::default()
    };
    let compiled = compile(&module, &opts).unwrap_or_else(|e| panic!("{name}: compile: {e}"));

    let mut w = VcdWriter::new(&name);
    let vars: Vec<_> = module
        .outputs()
        .map(|p| (p.name.clone(), w.add_var(&p.name, module.width(p.net))))
        .collect();
    w.begin();
    let mut sim = GemSimulator::new(&compiled).unwrap_or_else(|e| panic!("{name}: {e}"));
    sim.set_backend(backend);
    sim.set_lanes(LANES)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    // Lane 0 replays the golden stimulus seed; the other 63 lanes run
    // unrelated streams that must not leak into lane 0's waveform.
    let mut stim = FuzzRng::new(0x601D);
    let mut noise: Vec<FuzzRng> = (1..LANES)
        .map(|lane| FuzzRng::new(0xD15_7A4C ^ u64::from(lane)))
        .collect();
    for cycle in 0..CYCLES {
        for p in module.inputs() {
            let width = module.width(p.net);
            sim.set_input_lane(&p.name, 0, stim.bits(width));
            for (k, rng) in noise.iter_mut().enumerate() {
                sim.set_input_lane(&p.name, k as u32 + 1, rng.bits(width));
            }
        }
        sim.step();
        w.timestamp(cycle);
        for (pname, var) in &vars {
            w.change(*var, &sim.output_lane(pname, 0));
        }
    }
    w.finish()
}

#[test]
fn lane_zero_of_batch_matches_golden_digests() {
    const LANES: u32 = GemSimulator::MAX_LANES;
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let golden_dir = root.join("tests/golden");
    // The named corpus designs the issue pins; new designs are covered
    // by the scalar test above without forcing a lane run.
    for name in ["counter", "alu", "regfile"] {
        let path = root.join(format!("examples/designs/{name}.v"));
        let want = std::fs::read_to_string(golden_dir.join(format!("{name}.digest")))
            .unwrap_or_else(|_| panic!("{name}: no pinned golden digest"));
        for backend in [ExecBackend::Interpreted, ExecBackend::Compiled] {
            let digest = format!("{:016x}\n", fnv1a(&lane_zero_waveform(&path, backend)));
            assert_eq!(
                digest,
                want,
                "{name}: lane 0 of a {LANES}-lane batch under the {} backend diverged \
                 from the pinned scalar waveform",
                backend.name()
            );
        }
    }
}

#[test]
fn example_designs_match_golden_digests() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let designs_dir = root.join("examples/designs");
    let golden_dir = root.join("tests/golden");
    let bless = std::env::var_os("GEM_BLESS").is_some();

    let mut paths: Vec<_> = std::fs::read_dir(&designs_dir)
        .expect("examples/designs exists")
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "v"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 3,
        "golden corpus lost designs: {}",
        paths.len()
    );

    let mut mismatches = Vec::new();
    for path in &paths {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let digest = format!(
            "{:016x}\n",
            fnv1a(&waveform(path, ExecBackend::Interpreted))
        );
        // The compiled backend shares the corpus: its waveform must hash
        // to the *same* digest, before either is compared to the pin.
        let compiled_digest = format!("{:016x}\n", fnv1a(&waveform(path, ExecBackend::Compiled)));
        assert_eq!(
            digest, compiled_digest,
            "{name}: compiled backend produced a different waveform than interpreted"
        );
        let golden_path = golden_dir.join(format!("{name}.digest"));
        if bless {
            std::fs::create_dir_all(&golden_dir).expect("mkdir tests/golden");
            std::fs::write(&golden_path, &digest).expect("write digest");
            continue;
        }
        let want = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!(
                "{name}: no golden digest at {} — run GEM_BLESS=1 cargo test --test golden_vcd",
                golden_path.display()
            )
        });
        if want != digest {
            mismatches.push(format!(
                "{name}: waveform digest {} != golden {}",
                digest.trim(),
                want.trim()
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "observable behavior changed (re-bless only if intentional):\n  {}",
        mismatches.join("\n  ")
    );
}

/// A full-width 64-lane snapshot is portable across execution backends:
/// state captured mid-run under one backend resumes bit-exactly under
/// the other, per lane. And a snapshot whose lane word is a different
/// width than the machine's (a stale 32-wide capture) is rejected with
/// the typed error, not silently reinterpreted.
#[test]
fn full_width_snapshots_are_backend_portable_and_width_checked() {
    const LANES: u32 = GemSimulator::MAX_LANES;
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let path = root.join("examples/designs/alu.v");
    let src = std::fs::read_to_string(&path).expect("alu.v");
    let module = verilog::parse(&src).expect("parse");
    let opts = CompileOptions {
        core_width: 256,
        target_parts: 4,
        ..Default::default()
    };
    let compiled = compile(&module, &opts).expect("compile");

    let drive = |sim: &mut GemSimulator, stims: &mut [FuzzRng], cycles: u64| {
        for _ in 0..cycles {
            for p in module.inputs() {
                let width = module.width(p.net);
                for (lane, rng) in stims.iter_mut().enumerate() {
                    sim.set_input_lane(&p.name, lane as u32, rng.bits(width));
                }
            }
            sim.step();
        }
    };
    let mut stims: Vec<FuzzRng> = (0..LANES)
        .map(|lane| FuzzRng::new(0x5A9_5407 ^ u64::from(lane)))
        .collect();

    // Warm up under the interpreted backend, snapshot mid-run.
    let mut sim = GemSimulator::new(&compiled).expect("sim");
    sim.set_backend(ExecBackend::Interpreted);
    sim.set_lanes(LANES).expect("lanes");
    drive(&mut sim, &mut stims, 8);
    let snap = sim.snapshot();

    // Resume the snapshot under BOTH backends with identical further
    // stimulus; every lane of every output must agree cycle for cycle.
    let mut resumed: Vec<Vec<Vec<gem_netlist::Bits>>> = Vec::new();
    for backend in [ExecBackend::Interpreted, ExecBackend::Compiled] {
        let mut sim = GemSimulator::new(&compiled).expect("sim");
        sim.set_backend(backend);
        sim.set_lanes(LANES).expect("lanes");
        sim.restore(&snap).expect("restore");
        let mut stims: Vec<FuzzRng> = (0..LANES)
            .map(|lane| FuzzRng::new(0x7E57_0002 ^ u64::from(lane)))
            .collect();
        let mut trace = Vec::new();
        for _ in 0..8 {
            for p in module.inputs() {
                let width = module.width(p.net);
                for (lane, rng) in stims.iter_mut().enumerate() {
                    sim.set_input_lane(&p.name, lane as u32, rng.bits(width));
                }
            }
            sim.step();
            trace.push(
                module
                    .outputs()
                    .flat_map(|p| (0..LANES).map(|l| sim.output_lane(&p.name, l)))
                    .collect::<Vec<_>>(),
            );
        }
        resumed.push(trace);
    }
    assert_eq!(
        resumed[0], resumed[1],
        "a restored 64-lane snapshot diverged between backends"
    );
    assert_eq!(
        snap.word_bits(),
        64,
        "snapshots must record the lane word width"
    );

    // A stale snapshot claiming a 32-bit lane word must be refused with
    // the typed width error — its packed lane data means something else.
    let stale = sim.snapshot().with_word_bits(32);
    let mut sim = GemSimulator::new(&compiled).expect("sim");
    sim.set_lanes(LANES).expect("lanes");
    match sim.restore(&stale) {
        Err(gem_vgpu::MachineError::SnapshotWordWidth(snap_bits, mach_bits)) => {
            assert_eq!((snap_bits, mach_bits), (32, 64));
        }
        other => panic!("stale 32-wide snapshot not rejected: {other:?}"),
    }
}
