//! Cross-crate integration tests: every engine in the workspace must
//! agree on the same designs, and serialized artifacts must round-trip.

use gem_core::{compile, CompileOptions, GemSimulator};
use gem_netlist::{verilog, Bits, ModuleBuilder, ReadKind};
use gem_sim::{EaigSim, EventSim, LevelizedSim, NetlistSim};
use gem_vgpu::{GemGpu, Gl0amModel};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A mixed design exercising arithmetic, control, and both memory kinds.
fn mixed_module() -> gem_netlist::Module {
    let mut b = ModuleBuilder::new("mixed");
    let sel = b.input("sel", 1);
    let x = b.input("x", 8);
    let we = b.input("we", 1);
    let addr = b.input("addr", 4);
    // Datapath.
    let q = b.dff(8);
    let sum = b.add(q, x);
    let diff = b.sub(q, x);
    let nxt = b.mux(sel, sum, diff);
    b.connect_dff(q, nxt);
    // Sync RAM logging the datapath.
    let mem = b.memory("log", 16, 8);
    b.write_port(mem, addr, q, we);
    let rd = b.read_port(mem, addr, ReadKind::Sync);
    // Async register file flavored lookup.
    let rf = b.memory("rf", 8, 8);
    let low = b.slice(addr, 0, 3);
    b.write_port(rf, low, x, we);
    let rf_rd = b.read_port(rf, low, ReadKind::Async);
    b.output("q", q);
    b.output("rd", rd);
    b.output("rf_rd", rf_rd);
    b.finish().expect("valid")
}

/// All five engines, same stimulus, cycle-by-cycle agreement.
#[test]
fn five_engines_agree() {
    let m = mixed_module();
    let compiled = compile(&m, &CompileOptions::small()).expect("compiles");
    let g = &compiled.eaig;

    let mut gem = GemSimulator::new(&compiled).expect("loads");
    let mut rtl = NetlistSim::new(&m);
    let mut gold = EaigSim::new(g);
    let mut ev = EventSim::new(g);
    let mut lv = LevelizedSim::new(g, 2);
    let mut gl = Gl0amModel::new(g);

    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let n_in = g.inputs().len();
    for cycle in 0..150 {
        // Random named inputs.
        let mut bitvec = vec![false; n_in];
        for p in m.inputs() {
            let w = m.width(p.net);
            let mut v = Bits::zeros(w);
            for i in 0..w {
                v.set_bit(i, rng.gen_bool(0.5));
            }
            rtl.set_input(&p.name, v.clone());
            gem.set_input(&p.name, v.clone());
            let pb = compiled
                .eaig_inputs
                .iter()
                .find(|pb| pb.name == p.name)
                .expect("port mapped");
            for i in 0..w {
                bitvec[pb.lsb_index + i as usize] = v.bit(i);
            }
        }
        rtl.eval();
        for (i, &v) in bitvec.iter().enumerate() {
            gold.set_input(i, v);
        }
        gold.eval();
        let ev_out = ev.cycle(&bitvec);
        let lv_out = lv.cycle(&bitvec);
        let gl_out = gl.cycle(&bitvec);
        gem.step();

        for (oi, pb) in compiled.eaig_outputs.iter().enumerate() {
            let _ = oi;
            let rtl_v = rtl.output(&pb.name);
            let gem_v = gem.output(&pb.name);
            for i in 0..pb.width {
                let bit_idx = pb.lsb_index + i as usize;
                let want = rtl_v.bit(i);
                assert_eq!(gold.output(bit_idx), want, "golden {} c{cycle}", pb.name);
                assert_eq!(ev_out[bit_idx], want, "event {} c{cycle}", pb.name);
                assert_eq!(lv_out[bit_idx], want, "levelized {} c{cycle}", pb.name);
                assert_eq!(gl_out[bit_idx], want, "gl0am {} c{cycle}", pb.name);
                assert_eq!(gem_v.bit(i), want, "gem {} c{cycle}", pb.name);
            }
        }
        rtl.step();
        gold.step();
    }
}

/// Bitstream serialization round-trips and the reloaded machine behaves
/// identically.
#[test]
fn bitstream_round_trip_preserves_behaviour() {
    let m = mixed_module();
    let compiled = compile(&m, &CompileOptions::small()).expect("compiles");
    let bytes = compiled.bitstream.to_bytes();
    let restored = gem_isa::Bitstream::from_bytes(&bytes).expect("parses");
    assert_eq!(restored, compiled.bitstream);

    let mut gpu1 = GemGpu::load(&compiled.bitstream, compiled.device.clone()).expect("loads");
    let mut gpu2 = GemGpu::load(&restored, compiled.device.clone()).expect("loads");
    let input_bits: Vec<u32> = compiled
        .io
        .inputs
        .iter()
        .flat_map(|p| p.bits.iter().copied())
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    for _ in 0..40 {
        for &gbit in &input_bits {
            let v = rng.gen_bool(0.5);
            gpu1.poke(gbit, v);
            gpu2.poke(gbit, v);
        }
        gpu1.step_cycle();
        gpu2.step_cycle();
        for p in &compiled.io.outputs {
            for &gbit in &p.bits {
                assert_eq!(gpu1.peek(gbit), gpu2.peek(gbit));
            }
        }
    }
}

/// Verilog in, VCD out: the full toolchain of the paper's Fig 1.
#[test]
fn verilog_to_vcd_toolchain() {
    let src = r#"
        module edge_counter(input clk, input sig, output reg [7:0] count);
          reg last;
          always @(posedge clk) begin
            last <= sig;
            if (sig != last) count <= count + 8'd1;
          end
        endmodule
    "#;
    let m = verilog::parse(src).expect("parses");
    let compiled = compile(&m, &CompileOptions::small()).expect("compiles");
    let mut sim = GemSimulator::new(&compiled).expect("loads");

    let mut vcd = gem_netlist::vcd::VcdWriter::new("tb");
    let v_sig = vcd.add_var("sig", 1);
    let v_cnt = vcd.add_var("count", 8);
    vcd.begin();
    let pattern = [false, true, true, false, true, false, false, true];
    for (t, &s) in pattern.iter().enumerate() {
        sim.set_input("sig", Bits::from(s));
        sim.step();
        vcd.timestamp(t as u64);
        vcd.change(v_sig, &Bits::from(s));
        vcd.change(v_cnt, &sim.output("count"));
    }
    // 5 transitions within the window; outputs show pre-edge values, so
    // run one extra quiet cycle to observe the last increment.
    sim.step();
    vcd.timestamp(pattern.len() as u64);
    vcd.change(v_cnt, &sim.output("count"));
    let final_count = sim.output("count").to_u64();
    assert_eq!(final_count, 5, "edge count");

    let text = vcd.finish();
    let dump = gem_netlist::vcd::VcdDump::parse(&text).expect("parses");
    assert_eq!(dump.vars.len(), 2);
    let last_count = dump
        .changes
        .iter()
        .rev()
        .find(|(_, v, _)| *v == dump.var("count").unwrap())
        .map(|(_, _, b)| b.to_u64());
    assert_eq!(last_count, Some(final_count));
}

/// Compiling the same module twice is deterministic.
#[test]
fn compilation_is_deterministic() {
    let m = mixed_module();
    let a = compile(&m, &CompileOptions::small()).expect("compiles");
    let b = compile(&m, &CompileOptions::small()).expect("compiles");
    assert_eq!(a.bitstream, b.bitstream);
    assert_eq!(a.report.layers, b.report.layers);
    assert_eq!(a.report.parts, b.report.parts);
}
