//! Tier-1 smoke for the parallel execution engine: the differential
//! fuzz harness, run from the workspace root so `cargo test -q` (the
//! tier-1 gate) always exercises golden-vs-vGPU at 1 and 4 threads.
//!
//! The full 220-design sweep lives in
//! `crates/sim/tests/differential_fuzz.rs` (`--ignored`, run by the
//! CI `parallel-determinism` matrix). This copy is intentionally
//! small and additionally asserts the parallel path really engaged
//! (via `ExecStats`), which the per-crate suite leaves to unit tests.

use gem_core::{compile, CompileOptions, GemSimulator};
use gem_sim::{random_module, EaigSim, FuzzConfig, FuzzRng};

/// Returns the pool tasks the parallel engine dispatched for this seed.
fn run_seed(seed: u64, cycles: u64) -> u64 {
    let cfg = FuzzConfig::for_seed(seed);
    let m = random_module(seed, &cfg);
    // 64-bit cores: the widest setting that still forces multi-core
    // placements on this corpus (256 swallows every design whole).
    let opts = CompileOptions {
        core_width: 64,
        target_parts: 4,
        ..Default::default()
    };
    let compiled =
        compile(&m, &opts).unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}"));
    let mut gold = EaigSim::new(&compiled.eaig);
    let mut gem1 = GemSimulator::new(&compiled).unwrap();
    let mut gemn = GemSimulator::new(&compiled).unwrap();
    gem1.set_threads(1);
    gemn.set_threads(4);

    let n_in = compiled.eaig.inputs().len();
    let mut stim = FuzzRng::new(seed ^ 0x5717_B0B5);
    for cycle in 0..cycles {
        let mut bitvec = vec![false; n_in];
        for p in m.inputs() {
            let w = m.width(p.net);
            let v = stim.bits(w);
            gem1.set_input(&p.name, v.clone());
            gemn.set_input(&p.name, v.clone());
            let pb = compiled
                .eaig_inputs
                .iter()
                .find(|pb| pb.name == p.name)
                .unwrap();
            for i in 0..w {
                bitvec[pb.lsb_index + i as usize] = v.bit(i);
            }
        }
        for (i, &v) in bitvec.iter().enumerate() {
            gold.set_input(i, v);
        }
        gold.eval();
        gem1.step();
        gemn.step();
        for pb in compiled.eaig_outputs.iter() {
            let v1 = gem1.output(&pb.name);
            let vn = gemn.output(&pb.name);
            for i in 0..pb.width {
                let want = gold.output(pb.lsb_index + i as usize);
                assert_eq!(
                    v1.bit(i),
                    want,
                    "seed {seed} cycle {cycle}: serial engine diverged on {}[{i}]",
                    pb.name
                );
                assert_eq!(
                    vn.bit(i),
                    want,
                    "seed {seed} cycle {cycle}: parallel engine diverged on {}[{i}]",
                    pb.name
                );
            }
        }
        assert_eq!(
            gem1.counters(),
            gemn.counters(),
            "seed {seed} cycle {cycle}: counters diverged between engines"
        );
        gold.step();
    }
    assert_eq!(gem1.breakdown(), gemn.breakdown(), "seed {seed}");

    // Stages with a single core bypass the pool by design, so only
    // demand barriers when this seed's placement actually produced a
    // stage wide enough to fan out.
    let stats = gemn.exec_stats();
    assert_eq!(stats.threads, 4, "seed {seed}");
    let bd = gemn.breakdown();
    let widest_stage = (0..)
        .map(|s| bd.partitions.iter().filter(|p| p.stage == s).count())
        .take_while(|&n| n > 0)
        .max()
        .unwrap_or(0);
    if widest_stage > 1 {
        assert!(stats.stage_barriers >= cycles, "seed {seed}: {stats:?}");
        assert!(
            stats.parallel_tasks >= stats.stage_barriers,
            "seed {seed}: {stats:?}"
        );
    }
    assert_eq!(gem1.exec_stats().parallel_tasks, 0, "seed {seed}");
    stats.parallel_tasks
}

/// Golden vs serial vs 4-thread vGPU on a dozen random designs. At
/// least one seed in the range must be wide enough to exercise the
/// pool, otherwise the smoke silently degrades to serial-vs-serial.
#[test]
fn parallel_fuzz_smoke() {
    let mut pool_tasks = 0;
    for seed in 0..12 {
        pool_tasks += run_seed(seed, 10);
    }
    assert!(pool_tasks > 0, "no seed engaged the parallel engine");
}
