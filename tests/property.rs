//! Randomized-but-deterministic tests over the core invariants: random
//! RTL expression trees must survive the complete flow (synthesis →
//! partitioning → placement → assembly → virtual-GPU execution) with
//! bit-exact behaviour, and the foundational data structures must uphold
//! their algebraic laws.
//!
//! The cases are generated from fixed seeds via SplitMix64 (the sealed
//! build has no property-testing framework), so every run exercises the
//! same inputs — failures reproduce by seed with no shrinking needed.

use gem_core::{compile, CompileOptions, GemSimulator};
use gem_netlist::{Bits, Module, ModuleBuilder, NetId};
use gem_sim::NetlistSim;

/// SplitMix64: a tiny deterministic generator for test-case derivation.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A recipe for one random combinational/sequential module.
#[derive(Debug, Clone)]
struct Recipe {
    width: u32,
    ops: Vec<u8>,
    make_reg: bool,
}

impl Recipe {
    fn random(g: &mut Gen) -> Recipe {
        Recipe {
            width: 2 + g.below(8) as u32,
            ops: (0..1 + g.below(13)).map(|_| g.below(10) as u8).collect(),
            make_reg: g.below(2) == 1,
        }
    }
}

fn build(recipe: &Recipe) -> Module {
    let mut b = ModuleBuilder::new("prop");
    let x = b.input("x", recipe.width);
    let y = b.input("y", recipe.width);
    let mut vals: Vec<NetId> = vec![x, y];
    for (k, &op) in recipe.ops.iter().enumerate() {
        let a = vals[k % vals.len()];
        let c = vals[(k * 7 + 1) % vals.len()];
        let v = match op {
            0 => b.add(a, c),
            1 => b.sub(a, c),
            2 => b.and(a, c),
            3 => b.or(a, c),
            4 => b.xor(a, c),
            5 => b.not(a),
            6 => {
                let s = b.ult(a, c);
                b.mux(s, a, c)
            }
            7 => b.mul(a, c),
            8 => {
                let e = b.eq(a, c);
                let t = b.not(a);
                b.mux(e, t, c)
            }
            _ => b.neg(a),
        };
        vals.push(v);
    }
    let last = *vals.last().expect("nonempty");
    if recipe.make_reg {
        let q = b.dff(recipe.width);
        let nx = b.xor(q, last);
        b.connect_dff(q, nx);
        b.output("out", q);
    } else {
        b.output("out", last);
    }
    b.finish().expect("valid module")
}

/// Any random module survives the whole flow bit-exactly.
#[test]
fn full_flow_matches_reference() {
    for case in 0..24u64 {
        let mut g = Gen(0xF10F_0000 + case);
        let recipe = Recipe::random(&mut g);
        let m = build(&recipe);
        let compiled = compile(&m, &CompileOptions::small()).expect("compiles");
        let mut gem = GemSimulator::new(&compiled).expect("loads");
        let mut rtl = NetlistSim::new(&m);
        for _ in 0..12 {
            let state = g.next();
            let xv = Bits::from_u64(state & ((1 << recipe.width) - 1), recipe.width);
            let yv = Bits::from_u64((state >> 17) & ((1 << recipe.width) - 1), recipe.width);
            rtl.set_input("x", xv.clone());
            rtl.set_input("y", yv.clone());
            gem.set_input("x", xv);
            gem.set_input("y", yv);
            rtl.eval();
            gem.step();
            assert_eq!(
                gem.output("out"),
                rtl.output("out"),
                "case {case} recipe {recipe:?}"
            );
            rtl.step();
        }
    }
}

/// Bits arithmetic agrees with u64 arithmetic for widths ≤ 32.
#[test]
fn bits_matches_u64() {
    let mut g = Gen(0xB175);
    for _ in 0..200 {
        let w = 1 + g.below(32) as u32;
        let mask = if w == 32 { u32::MAX } else { (1u32 << w) - 1 };
        let av = g.next() as u32 & mask;
        let bv = g.next() as u32 & mask;
        let ba = Bits::from_u64(av as u64, w);
        let bb = Bits::from_u64(bv as u64, w);
        assert_eq!(ba.add(&bb).to_u64(), (av.wrapping_add(bv) & mask) as u64);
        assert_eq!(ba.sub(&bb).to_u64(), (av.wrapping_sub(bv) & mask) as u64);
        assert_eq!(ba.mul(&bb).to_u64(), (av.wrapping_mul(bv) & mask) as u64);
        assert_eq!(ba.ult(&bb), av < bv);
        assert_eq!(ba.and(&bb).to_u64(), (av & bv) as u64);
        assert_eq!(ba.xor(&bb).to_u64(), (av ^ bv) as u64);
        assert_eq!(ba.not().to_u64(), (!av & mask) as u64);
    }
}

/// Slicing and concatenation are inverses.
#[test]
fn bits_slice_concat_inverse() {
    let mut g = Gen(0x511CE);
    for _ in 0..200 {
        let w = 2 + g.below(47) as u32;
        let cut = 1 + g.below(u64::from(w) - 1) as u32;
        let v = g.next();
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let b = Bits::from_u64(v & mask, w);
        let lo = b.slice(0, cut);
        let hi = b.slice(cut, w - cut);
        assert_eq!(lo.concat(&hi), b, "w={w} cut={cut}");
    }
}

/// The E-AIG's AND builder is commutative, idempotent, and respects
/// identity/annihilator laws.
#[test]
fn eaig_and_laws() {
    use gem_aig::{Eaig, Lit};
    let mut gen = Gen(0xA1D);
    for _ in 0..50 {
        let n_inputs = 2 + gen.below(4) as usize;
        let mut g = Eaig::new();
        let ins: Vec<Lit> = (0..n_inputs).map(|i| g.input(format!("i{i}"))).collect();
        for _ in 0..1 + gen.below(19) {
            let la = ins[gen.below(n_inputs as u64) as usize].flip_if(gen.below(2) == 1);
            let lb = ins[gen.below(n_inputs as u64) as usize].flip_if(gen.below(2) == 1);
            assert_eq!(g.and(la, lb), g.and(lb, la), "commutative");
            assert_eq!(g.and(la, la), la, "idempotent");
            assert_eq!(g.and(la, Lit::TRUE), la, "identity");
            assert_eq!(g.and(la, Lit::FALSE), Lit::FALSE, "annihilator");
            assert_eq!(g.and(la, la.flip()), Lit::FALSE, "complement");
        }
    }
}

/// Placement preserves semantics on random partitions of random logic
/// (direct CoreProgram evaluation against the golden simulator).
#[test]
fn placement_preserves_semantics() {
    use gem_aig::{Eaig, Lit};
    use gem_partition::{partition, PartitionOptions};
    use gem_place::{place_partition, PlaceOptions};
    use gem_sim::EaigSim;
    for case in 0..12u64 {
        let mut gen = Gen(0x91ACE + case);
        let seed = gen.next();
        let width_pow = 6 + gen.below(3) as u32;
        let mut g = Eaig::new();
        let mut lits: Vec<Lit> = (0..10).map(|i| g.input(format!("i{i}"))).collect();
        let mut x = seed | 1;
        for _ in 0..50 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = lits[(x >> 8) as usize % lits.len()];
            let b = lits[(x >> 24) as usize % lits.len()];
            lits.push(match (x >> 40) % 3 {
                0 => g.and(a, b),
                1 => g.or(a, b),
                _ => g.xor(a, b),
            });
        }
        let last = *lits.last().unwrap();
        g.output("o", last);
        let parts = partition(
            &g,
            &PartitionOptions {
                target_parts: 2,
                ..Default::default()
            },
        );
        let opts = PlaceOptions {
            core_width: 1 << width_pow,
            ..Default::default()
        };
        let mut gold = EaigSim::new(&g);
        let programs: Vec<_> = parts.stages[0]
            .partitions
            .iter()
            .map(|p| place_partition(&g, p, &opts).expect("mappable"))
            .collect();
        for c in 0..8u64 {
            let ins: Vec<bool> = (0..10).map(|i| (seed >> (c + i)) & 1 == 1).collect();
            for (i, &v) in ins.iter().enumerate() {
                gold.set_input(i, v);
            }
            gold.eval();
            for (pi, (prog, _)) in programs.iter().enumerate() {
                let outs = prog.evaluate(|n| gold.lit(Lit::from_node(n)));
                for (k, &sink) in parts.stages[0].partitions[pi].sinks.iter().enumerate() {
                    assert_eq!(outs[k], gold.lit(sink), "case {case} part {pi} sink {k}");
                }
            }
            gold.step();
        }
    }
}
