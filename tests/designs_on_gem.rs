//! Every benchmark design (smoke scale) must run bit-exactly on the
//! virtual GPU under its own named workloads, checked against the
//! word-level netlist reference — the strongest end-to-end statement the
//! workspace makes.

use gem_core::{compile, CompileOptions, GemSimulator};
use gem_sim::NetlistSim;

#[test]
fn all_designs_run_correctly_on_the_virtual_gpu() {
    for design in gem_designs::all_designs(0) {
        let opts = CompileOptions {
            core_width: 1024,
            target_parts: 4,
            stages: if design.name.starts_with("OpenPiton") {
                2
            } else {
                1
            },
            ..Default::default()
        };
        let compiled = compile(&design.module, &opts)
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}", design.name));
        let workload = &design.workloads[0];
        let widths = |n: &str| {
            design
                .module
                .port(n)
                .map(|p| design.module.width(p.net))
                .unwrap_or(1)
        };
        let mut stim = workload.stimulus(&widths);
        let mut gem = GemSimulator::new(&compiled).expect("loads");
        let mut rtl = NetlistSim::new(&design.module);
        let cycles = stim.warmup_cycles() + 40;
        for cycle in 0..cycles {
            for (name, v) in stim.next_inputs() {
                rtl.set_input(&name, v.clone());
                gem.set_input(&name, v);
            }
            rtl.eval();
            gem.step();
            for p in design.module.outputs() {
                assert_eq!(
                    gem.output(&p.name),
                    rtl.output(&p.name),
                    "{} / {} cycle {cycle}: output {} diverged",
                    design.name,
                    workload.name,
                    p.name
                );
            }
            rtl.step();
        }
    }
}

#[test]
fn pruned_gem_matches_oblivious_gem_on_a_cpu_workload() {
    let design = gem_designs::openpiton_like(2);
    let opts = CompileOptions {
        core_width: 1024,
        target_parts: 4,
        stages: 2,
        ..Default::default()
    };
    let compiled = compile(&design.module, &opts).expect("compiles");
    let workload = &design.workloads[2]; // low-activity program
    let widths = |n: &str| {
        design
            .module
            .port(n)
            .map(|p| design.module.width(p.net))
            .unwrap_or(1)
    };
    let mut stim_a = workload.stimulus(&widths);
    let mut stim_b = workload.stimulus(&widths);
    let mut oblivious = GemSimulator::new(&compiled).expect("loads");
    let mut pruned = GemSimulator::new(&compiled).expect("loads");
    pruned.set_pruning(true);
    for cycle in 0..stim_a.warmup_cycles() + 60 {
        for (name, v) in stim_a.next_inputs() {
            oblivious.set_input(&name, v);
        }
        for (name, v) in stim_b.next_inputs() {
            pruned.set_input(&name, v);
        }
        oblivious.step();
        pruned.step();
        for p in design.module.outputs() {
            assert_eq!(
                oblivious.output(&p.name),
                pruned.output(&p.name),
                "pruning diverged at cycle {cycle} on {}",
                p.name
            );
        }
    }
    assert!(
        pruned.counters().blocks_skipped > 0,
        "idle tiles must be pruned"
    );
    assert!(pruned.counters().global_bytes < oblivious.counters().global_bytes);
}
