//! Quickstart: build a small design programmatically, compile it through
//! the full GEM flow, and simulate it on the virtual GPU.
//!
//! Run with: `cargo run --release --example quickstart`

use gem_core::{compile, CompileOptions, GemSimulator};
use gem_netlist::{Bits, ModuleBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the RTL: a 16-bit Fibonacci generator.
    let mut b = ModuleBuilder::new("fib");
    let en = b.input("en", 1);
    let a = b.dff_init(Bits::from_u64(1, 16)); // F(n-1), starts at 1
    let c = b.dff(16); //                         F(n-2), starts at 0
    let sum = b.add(a, c);
    let a_next = b.mux(en, sum, a);
    let c_next = b.mux(en, a, c);
    b.connect_dff(a, a_next);
    b.connect_dff(c, c_next);
    b.output("fib", a);
    let module = b.finish()?;

    // 2. Compile: synthesis → partitioning → placement → bitstream.
    let compiled = compile(&module, &CompileOptions::small())?;
    let r = &compiled.report;
    println!("compiled `fib`:");
    println!("  {} E-AIG gates, {} logic levels", r.gates, r.levels);
    println!(
        "  {} stage(s), {} partition(s), {} boomerang layer(s) max",
        r.stages, r.parts, r.layers
    );
    println!("  bitstream: {} bytes", r.bitstream_bytes);

    // 3. Simulate on the virtual GPU.
    let mut sim = GemSimulator::new(&compiled)?;
    sim.set_input("en", Bits::from_u64(1, 1));
    print!("fib sequence:");
    for _ in 0..10 {
        sim.step();
        print!(" {}", sim.output("fib").to_u64());
    }
    println!();

    // 4. The architectural event counters behind the speed model.
    let c = sim.counters();
    println!(
        "per-cycle cost: {} global bytes, {} device syncs, {} fold ops",
        c.global_bytes / c.cycles,
        c.device_syncs / c.cycles,
        c.alu_ops / c.cycles
    );
    Ok(())
}
