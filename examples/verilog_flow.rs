//! Verilog front-end flow: parse synthesizable Verilog, compile it for
//! GEM, simulate, and dump a VCD waveform — the paper's compile/execute
//! split end to end.
//!
//! Run with: `cargo run --release --example verilog_flow`

use gem_core::{compile, CompileOptions, GemSimulator};
use gem_netlist::vcd::VcdWriter;
use gem_netlist::{verilog, Bits};

const SRC: &str = r#"
// A small pipelined checksum unit.
module checksum(input clk, input rst, input [7:0] data,
                output reg [15:0] sum, output parity);
  reg [7:0] stage1;
  assign parity = ^sum;
  always @(posedge clk) begin
    if (rst) begin
      stage1 <= 8'd0;
      sum <= 16'd0;
    end else begin
      stage1 <= data ^ {data[3:0], data[7:4]};
      sum <= sum + {8'd0, stage1};
    end
  end
endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = verilog::parse(SRC)?;
    println!(
        "parsed module `{}`: {} cells, {} state bits",
        module.name(),
        module.cells().len(),
        module.state_bits()
    );

    let compiled = compile(&module, &CompileOptions::small())?;
    println!(
        "compiled: {} gates / {} levels → {} boomerang layers",
        compiled.report.gates, compiled.report.levels, compiled.report.layers
    );

    let mut sim = GemSimulator::new(&compiled)?;
    let mut vcd = VcdWriter::new("checksum_tb");
    let v_data = vcd.add_var("data", 8);
    let v_sum = vcd.add_var("sum", 16);
    let v_par = vcd.add_var("parity", 1);
    vcd.begin();

    // Reset, then stream a data pattern.
    sim.set_input("rst", Bits::from_u64(1, 1));
    sim.set_input("data", Bits::zeros(8));
    sim.step();
    sim.set_input("rst", Bits::from_u64(0, 1));
    for t in 0..16u64 {
        let data = Bits::from_u64((t * 37 + 11) & 0xFF, 8);
        sim.set_input("data", data.clone());
        sim.step();
        vcd.timestamp(t * 10);
        vcd.change(v_data, &data);
        vcd.change(v_sum, &sim.output("sum"));
        vcd.change(v_par, &sim.output("parity"));
    }
    println!("final sum = {}", sim.output("sum").to_u64());

    let path = std::env::temp_dir().join("gem_checksum.vcd");
    std::fs::write(&path, vcd.finish())?;
    println!("waveform written to {}", path.display());
    Ok(())
}
