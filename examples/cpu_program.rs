//! Run a program on the RocketChip-like CPU design under GEM, and compare
//! the modeled GPU simulation speed against the CPU baselines — a
//! one-design slice of Table II.
//!
//! Run with: `cargo run --release --example cpu_program`

use gem_core::GemSimulator;
use gem_designs::cpu::{assemble, Insn};
use gem_netlist::Bits;
use gem_sim::{EventSim, LevelizedSim};
use gem_vgpu::{GpuSpec, TimingModel};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = gem_designs::rocket_like();
    // sum = 1 + 2 + ... : r1 counts up, r7 accumulates.
    let program = assemble(&[
        Insn::Li(1, 0),
        Insn::Li(2, 1),
        Insn::Add(1, 1, 2), // loop at 2
        Insn::Add(7, 7, 1),
        Insn::Jmp(2),
    ]);

    let opts = gem_core::CompileOptions {
        core_width: 2048,
        target_parts: 8,
        ..Default::default()
    };
    let t0 = Instant::now();
    let compiled = gem_core::compile(&design.module, &opts)?;
    println!(
        "compiled {} ({} gates) in {:?}; {} partitions, {} layers",
        design.name,
        compiled.report.gates,
        t0.elapsed(),
        compiled.report.parts,
        compiled.report.layers
    );

    // Boot: stream the program while in reset, then run.
    let mut sim = GemSimulator::new(&compiled)?;
    for (i, &w) in program.iter().enumerate() {
        sim.set_input("rst", Bits::from_u64(1, 1));
        sim.set_input("host_we", Bits::from_u64(1, 1));
        sim.set_input("host_addr", Bits::from_u64(i as u64, 8));
        sim.set_input("host_data", Bits::from_u64(u64::from(w), 16));
        sim.step();
    }
    sim.set_input("rst", Bits::zeros(1));
    sim.set_input("host_we", Bits::zeros(1));
    for _ in 0..90 {
        sim.step();
    }
    println!(
        "after 90 cycles (30 instructions at CPI=3): pc={} result={}",
        sim.output("pc").to_u64(),
        sim.output("result").to_u64()
    );

    // Speed comparison on this design.
    let per_cycle = sim.counters().per_cycle().expect("ran");
    let gem_a100 = TimingModel::new(GpuSpec::a100()).hz(&per_cycle);
    let gem_3090 = TimingModel::new(GpuSpec::rtx3090()).hz(&per_cycle);
    let n = compiled.eaig.inputs().len();
    let cycles = 3000u64;
    let mut ev = EventSim::new(&compiled.eaig);
    let t = Instant::now();
    for c in 0..cycles {
        let mut ins = vec![false; n];
        ins[0] = c % 7 == 0;
        ev.cycle(&ins);
    }
    let ev_hz = cycles as f64 / t.elapsed().as_secs_f64();
    let mut lv = LevelizedSim::new(&compiled.eaig, 1);
    let t = Instant::now();
    for c in 0..cycles {
        let mut ins = vec![false; n];
        ins[0] = c % 7 == 0;
        lv.cycle(&ins);
    }
    let lv_hz = cycles as f64 / t.elapsed().as_secs_f64();
    println!("simulation speed (simulated cycles/second):");
    println!("  GEM on A100 (modeled):      {gem_a100:>12.0} Hz");
    println!("  GEM on RTX 3090 (modeled):  {gem_3090:>12.0} Hz");
    println!("  event-driven CPU baseline:  {ev_hz:>12.0} Hz (measured)");
    println!("  levelized CPU baseline:     {lv_hz:>12.0} Hz (measured)");
    Ok(())
}
