//! Throughput vs latency: the paper's §I distinction, measured.
//!
//! Batch-stimulus GPU simulators (RTLflow-style) fill the data-parallel
//! lanes with independent testbenches — great *throughput*, unchanged
//! *latency*. GEM instead accelerates a single stimulus. This example
//! runs both on the same design: `BatchSim` simulates 64 testbenches at
//! once on a CPU word, while GEM's virtual GPU runs one.
//!
//! Run with: `cargo run --release --example batch_throughput`

use gem_core::{compile, CompileOptions, GemSimulator};
use gem_sim::{BatchSim, EaigSim};
use gem_vgpu::{GpuSpec, TimingModel};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = gem_designs::nvdla_like(8);
    let opts = CompileOptions {
        core_width: 2048,
        target_parts: 4,
        ..Default::default()
    };
    let compiled = compile(&design.module, &opts)?;
    let g = &compiled.eaig;
    let n_in = g.inputs().len();
    let cycles = 400u64;

    // Latency-oriented single-stimulus engines.
    let mut scalar = EaigSim::new(g);
    let t = Instant::now();
    for c in 0..cycles {
        let ins: Vec<bool> = (0..n_in)
            .map(|i| (c as usize + i).is_multiple_of(3))
            .collect();
        scalar.cycle(&ins);
    }
    let scalar_hz = cycles as f64 / t.elapsed().as_secs_f64();

    let mut batch = BatchSim::new(g);
    let t = Instant::now();
    for c in 0..cycles {
        let packed: Vec<u64> = (0..n_in as u64)
            .map(|i| (c ^ i).wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        batch.cycle(&packed);
    }
    let batch_step_hz = cycles as f64 / t.elapsed().as_secs_f64();

    let mut gem = GemSimulator::new(&compiled)?;
    for _ in 0..4 {
        gem.step();
    }
    let gem_hz = TimingModel::new(GpuSpec::a100()).hz(&gem.counters().per_cycle().expect("ran"));

    println!("design: {} ({} gates)", design.name, compiled.report.gates);
    println!("single-stimulus LATENCY (simulated cycles/second):");
    println!("  golden interpreter:      {scalar_hz:>12.0}");
    println!("  batch engine (1 tb):     {batch_step_hz:>12.0}   <- no better than scalar");
    println!("  GEM on A100 (modeled):   {gem_hz:>12.0}   <- GEM's contribution");
    println!("aggregate THROUGHPUT (testbench-cycles/second):");
    println!(
        "  batch engine (64 tb):    {:>12.0}   <- wins on throughput only",
        batch_step_hz * 64.0
    );
    println!();
    println!("The paper, §I: batch approaches \"improve simulation throughput\" but");
    println!("\"cannot help in reducing latency which is critical for rapid turnaround\".");
    Ok(())
}
