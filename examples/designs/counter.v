// Gated 8-bit counter with synchronous reset: the smallest stateful
// design in the example corpus (one FF bank, one adder cone).
module counter(input clk, input rst, input en, output reg [7:0] q);
  always @(posedge clk) begin
    if (rst) q <= 8'd0;
    else if (en) q <= q + 8'd1;
  end
endmodule
