// A 16-entry register file with one write port, a synchronous read
// port, and an asynchronous read port: covers both RAM read kinds the
// synthesizer maps (native sync reads and polyfilled async reads).
module regfile(input clk, input we, input [3:0] wa, input [7:0] wd,
               input [3:0] ra, output [7:0] async_q,
               output reg [7:0] sync_q);
  reg [7:0] mem [0:15];
  always @(posedge clk) begin
    if (we) mem[wa] <= wd;
    sync_q <= mem[ra];
  end
  assign async_q = mem[ra];
endmodule
