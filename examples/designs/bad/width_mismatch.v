// Lint fixture: width truncation (GEM-L005, warning).
//
// An 8-bit sum is assigned to a 4-bit output; the elaborator silently
// drops the top nibble and records a source lint, which the analyzer
// surfaces as a warning naming both widths.
module width_mismatch(input [7:0] a, input [7:0] b, output [3:0] y);
  assign y = a + b;
endmodule
