// Lint fixture: combinational cycle (GEM-L001, error).
//
// `fb` feeds itself through an AND gate with no flip-flop on the path,
// so the design cannot be levelized. `gem lint` names the cycle:
// the witness walks fb -> (and output) -> fb.
module comb_loop(input a, output y);
  wire fb;
  assign fb = fb & a;
  assign y = ~fb;
endmodule
