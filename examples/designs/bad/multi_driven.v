// Lint fixture: multiply-driven net (GEM-L003, error).
//
// Two continuous assigns race on `w`; hardware would short two gate
// outputs together. The witness names the contested net.
module multi_driven(input a, input b, output y);
  wire w;
  assign w = a;
  assign w = b;
  assign y = w;
endmodule
