// Lint fixture: dead logic cone (GEM-L006, info).
//
// `unused` is computed but feeds no output and no live state, so the
// whole cone is dead weight synthesis will prune. The aggregated
// diagnostic names example nets from the cone.
module dead_cone(input [3:0] a, input [3:0] b, output [3:0] y);
  wire [3:0] unused;
  assign unused = a ^ b;
  assign y = a & b;
endmodule
