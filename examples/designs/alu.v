// A small ALU with a registered accumulator: deep combinational cones
// (add / xor / and / shift select) feeding sequential state, which
// exercises multi-layer boomerang placement.
module alu(input clk, input [1:0] op, input [7:0] a, input [7:0] b,
           output [7:0] y, output reg [15:0] acc);
  wire [7:0] sum;
  wire [7:0] bxor;
  wire [7:0] band;
  wire [7:0] shl;
  assign sum = a + b;
  assign bxor = a ^ b;
  assign band = a & b;
  assign shl = a << 1;
  assign y = (op == 2'd0) ? sum :
             (op == 2'd1) ? bxor :
             (op == 2'd2) ? band : shl;
  always @(posedge clk) acc <= acc + {8'd0, y};
endmodule
