//! Offline stand-in for `rand_chacha`.
//!
//! Provides [`ChaCha8Rng`] with the construction and trait surface the
//! workspace uses. The generator is a xoshiro256** stream seeded from the
//! 32-byte seed — deterministic and well-distributed, but **not** the
//! ChaCha8 keystream of the upstream crate (nothing in GEM-RS depends on
//! the exact stream, only on seed-reproducibility).

use rand::{RngCore, SeedableRng};

/// Deterministic seeded generator with the `ChaCha8Rng` API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl ChaCha8Rng {
    fn mix(seed: &[u8; 32]) -> [u64; 4] {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        // An all-zero state would be a fixed point; nudge it.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        s
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        ChaCha8Rng {
            s: Self::mix(&seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let v: u32 = r.gen_range(0..10);
        assert!(v < 10);
        let _ = r.gen_bool(0.5);
    }
}
