//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API used by the GEM-RS
//! benches — `Criterion::benchmark_group`/`bench_function`/
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros — as a plain
//! wall-clock harness. Each benchmark runs a short calibration pass, then
//! `sample_size` timed samples, and prints the median to stderr. There is
//! no statistical analysis, HTML report, or baseline comparison; this
//! exists so `cargo bench` works in a sealed build environment.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples of an auto-scaled
    /// batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate a batch size targeting ≈5 ms per sample.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed() / batch);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    crit: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.crit.run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.crit
            .run_one(&full, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API parity).
    pub fn finish(&mut self) {}
}

/// The harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            crit: self,
            sample_size,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.default_sample_size;
        self.run_one(name, n, &mut f);
        self
    }

    fn run_one(&mut self, name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        f(&mut b);
        let med = b.median();
        eprintln!("bench {name:<40} median {med:>12.3?}");
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = 0u32;
        group.bench_function("noop", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("stages", 2).to_string(), "stages/2");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
