//! Offline stand-in for the `rand` crate.
//!
//! The GEM-RS build environment has no network access, so the workspace
//! vendors the tiny subset of the `rand 0.8` API it actually uses:
//! [`RngCore`], [`Rng`] (`gen_bool`, `gen_range`, `gen`, `fill_bytes`),
//! [`SeedableRng`], and [`seq::SliceRandom::shuffle`]. Streams are
//! deterministic for a given seed, which is all the heuristics and tests
//! require — they do **not** reproduce upstream `rand` output.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling helpers (blanket-implemented for every bit source).
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, as upstream rand does.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Samples a uniform value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream rand, flattened into a trait).
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let b = z.to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice extensions (only `shuffle` is provided).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }
}
